//! `lip_lint` — lint textual netlists for the paper's implementation
//! issues, without simulating.
//!
//! ```text
//! lip_lint [--json] [--fix] [--deny RULE|all]... [--allow RULE|all]... <file.lid>...
//! ```
//!
//! * `--json` — emit one versioned JSON document (schema_version 1)
//!   covering every input file instead of the human renderer;
//! * `--fix` — apply machine-applicable fix-its and rewrite each file
//!   in place (names are preserved, comments are not), then report the
//!   diagnostics that remain;
//! * `--deny RULE` — exit non-zero if RULE fires (`all` for every
//!   rule); error-severity diagnostics always fail the run;
//! * `--allow RULE` — suppress RULE entirely (`all` for every rule);
//!   allow wins over deny.
//!
//! Exit codes: 0 clean, 1 lint failure, 2 usage or parse error.

use lip_graph::{parse_netlist_spanned, write_netlist};
use lip_lint::{
    apply_fixits, apply_fixits_compiled, lint, render_human, render_json, Diagnostic, LintConfig,
    RuleId,
};
use lip_sim::SettleProgram;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = run(&args.iter().map(String::as_str).collect::<Vec<_>>());
    std::process::exit(code);
}

#[derive(Default)]
struct Options {
    json: bool,
    fix: bool,
    config: LintConfig,
    files: Vec<String>,
}

fn parse_args(args: &[&str]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(&arg) = it.next() {
        match arg {
            "--json" => opts.json = true,
            "--fix" => opts.fix = true,
            "--deny" | "--allow" => {
                let value = *it.next().ok_or_else(|| format!("{arg} needs a rule"))?;
                let rules: Vec<RuleId> = if value.eq_ignore_ascii_case("all") {
                    RuleId::ALL.to_vec()
                } else {
                    vec![RuleId::from_code(value)
                        .ok_or_else(|| format!("unknown rule `{value}`"))?]
                };
                for rule in rules {
                    if arg == "--deny" {
                        opts.config.deny(rule);
                    } else {
                        opts.config.allow(rule);
                    }
                }
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            file => opts.files.push(file.to_owned()),
        }
    }
    if opts.files.is_empty() {
        return Err("no input files".to_owned());
    }
    Ok(opts)
}

fn usage(err: &str) -> i32 {
    eprintln!("error: {err}");
    eprintln!(
        "usage: lip_lint [--json] [--fix] [--deny RULE|all] [--allow RULE|all] <file.lid>..."
    );
    eprintln!("rules:");
    for rule in RuleId::ALL {
        eprintln!(
            "  {} ({}): {}",
            rule.code(),
            rule.default_severity(),
            rule.summary()
        );
    }
    2
}

fn run(args: &[&str]) -> i32 {
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(e) => return usage(&e),
    };
    let mut failed = false;
    let mut per_file: Vec<(String, Vec<Diagnostic>)> = Vec::new();
    for file in &opts.files {
        let diags = match lint_file(file, &opts) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        };
        if opts.config.should_fail(&diags) {
            failed = true;
        }
        if opts.json {
            per_file.push((file.clone(), diags));
        } else {
            print!("{}", render_human(file, &diags));
        }
    }
    if opts.json {
        print!("{}", render_json(&per_file));
    }
    i32::from(failed)
}

/// Lint one file; with `--fix`, rewrite it and report what remains.
fn lint_file(file: &str, opts: &Options) -> Result<Vec<Diagnostic>, String> {
    let text =
        std::fs::read_to_string(file).map_err(|e| format!("error: cannot read `{file}`: {e}"))?;
    let parsed = parse_netlist_spanned(&text)
        .map_err(|e| format!("{file}:{}: error[parse]: {}", e.span, e.message()))?;
    let mut netlist = parsed.netlist;
    let diags = opts.config.filter(lint(&netlist, &parsed.source_map));
    if !opts.fix || diags.iter().all(|d| d.fix.is_none()) {
        return Ok(diags);
    }
    // One compile per file; each insertion fix-it is then an
    // incremental patch on that program (`compile.patch`), so a batch
    // of fixes never pays per-fix recompiles. A netlist that does not
    // compile (e.g. a combinational loop the lint is reporting) falls
    // back to the uncompiled applier.
    let report = match SettleProgram::compile(&netlist) {
        Ok(mut program) => apply_fixits_compiled(&mut netlist, &mut program, &diags),
        Err(_) => apply_fixits(&mut netlist, &diags),
    }
    .map_err(|e| format!("error: cannot fix `{file}`: {e}"))?;
    let fixed_text = write_netlist(&netlist);
    std::fs::write(file, &fixed_text).map_err(|e| format!("error: cannot write `{file}`: {e}"))?;
    eprintln!(
        "{file}: applied {} fix(es), inserted {} relay station(s)",
        diags.iter().filter(|d| d.fix.is_some()).count(),
        report.total_inserted()
    );
    // Re-parse what we wrote so remaining diagnostics carry fresh spans.
    let reparsed = parse_netlist_spanned(&fixed_text)
        .map_err(|e| format!("{file}: error[parse] after fix: {e}"))?;
    Ok(opts
        .config
        .filter(lint(&reparsed.netlist, &reparsed.source_map)))
}

#[cfg(test)]
mod tests {
    use super::*;

    const BACK_TO_BACK: &str = "source in\n\
                                shell a identity\n\
                                shell b identity\n\
                                sink out\n\
                                connect in:0 -> a:0\n\
                                connect a:0 -> b:0\n\
                                connect b:0 -> out:0\n";

    fn temp_file(name: &str, contents: &str) -> String {
        let dir = std::env::temp_dir().join("lip_lint_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, contents).unwrap();
        path.to_str().unwrap().to_owned()
    }

    #[test]
    fn parses_flags() {
        let opts = parse_args(&["--json", "--deny", "all", "--allow", "lip004", "x.lid"]).unwrap();
        assert!(opts.json && !opts.fix);
        assert_eq!(opts.files, ["x.lid"]);
        assert!(opts.config.is_denied(RuleId::Lip001));
        assert!(opts.config.is_allowed(RuleId::Lip004));
        assert!(!opts.config.is_denied(RuleId::Lip004), "allow wins");
        assert!(parse_args(&["--deny"]).is_err());
        assert!(parse_args(&["--deny", "LIP999", "x"]).is_err());
        assert!(parse_args(&["--bogus", "x"]).is_err());
        assert!(parse_args(&[]).is_err());
    }

    #[test]
    fn lints_and_denies() {
        let file = temp_file("warn.lid", BACK_TO_BACK);
        // LIP001 is warning severity: reported, but only --deny fails.
        assert_eq!(run(&[&file]), 0);
        assert_eq!(run(&["--deny", "LIP001", &file]), 1);
        assert_eq!(run(&["--deny", "all", "--allow", "all", &file]), 0);
        assert_eq!(run(&["--json", "--deny", "all", &file]), 1);
    }

    #[test]
    fn fix_rewrites_until_clean() {
        let file = temp_file("fix.lid", BACK_TO_BACK);
        assert_eq!(run(&["--fix", "--deny", "all", &file]), 0);
        let fixed = std::fs::read_to_string(&file).unwrap();
        assert!(fixed.contains("relay"), "{fixed}");
        // The fixed file now lints clean even under --deny all.
        assert_eq!(run(&["--deny", "all", &file]), 0);
    }

    #[test]
    fn parse_errors_exit_2() {
        let file = temp_file("broken.lid", "relay r fifo:1\n");
        assert_eq!(run(&[&file]), 2);
        assert_eq!(run(&["missing-file.lid"]), 2);
    }
}
