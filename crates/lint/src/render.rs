//! Diagnostic renderers: a human-readable text form and a versioned
//! JSON document (hand-rolled, mirroring `lip_obs`'s report encoder —
//! the workspace takes no serialisation dependency).

use std::fmt::Write as _;

use lip_graph::Span;

use crate::diag::{Diagnostic, Severity};

/// Version of the JSON diagnostics schema emitted by [`render_json`].
/// Re-exported from the central `lip_obs::schema` registry; bump it
/// there.
pub const LINT_SCHEMA_VERSION: u32 = lip_obs::schema::LINT;

fn position(file: &str, span: Option<Span>) -> String {
    match span {
        Some(s) => format!("{file}:{s}"),
        None => file.to_owned(),
    }
}

/// Render `diags` for humans: one block per diagnostic, then a
/// one-line tally (or `clean`).
#[must_use]
pub fn render_human(file: &str, diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        let _ = writeln!(
            out,
            "{}: {}[{}]: {}",
            position(file, d.primary),
            d.severity,
            d.rule,
            d.message
        );
        for n in &d.nodes {
            let _ = writeln!(out, "  --> node `{}` at {}", n.name, position(file, n.span));
        }
        for c in &d.channels {
            let _ = writeln!(
                out,
                "  --> channel `{}` at {}",
                c.endpoints,
                position(file, c.span)
            );
        }
        if let Some(t) = d.predicted_throughput {
            let _ = writeln!(out, "  = predicted steady-state throughput: {t}");
        }
        if let Some(fix) = &d.fix_label {
            let _ = writeln!(out, "  = fix: {fix}");
        }
        if !d.related.is_empty() {
            let codes: Vec<&str> = d.related.iter().map(|r| r.code()).collect();
            let _ = writeln!(out, "  = related: {}", codes.join(", "));
        }
    }
    if diags.is_empty() {
        let _ = writeln!(out, "{file}: clean");
    } else {
        let (e, w, i) = Diagnostic::tally(diags);
        let _ = writeln!(
            out,
            "{file}: {} diagnostic(s): {e} error(s), {w} warning(s), {i} info(s)",
            diags.len()
        );
    }
    out
}

/// Render diagnostics for one or more files as a single versioned JSON
/// document:
///
/// ```json
/// {
///   "schema_version": 1,
///   "files": [
///     { "file": "...", "diagnostics": [...],
///       "counts": { "error": 0, "warning": 1, "info": 0 } }
///   ]
/// }
/// ```
#[must_use]
pub fn render_json(files: &[(String, Vec<Diagnostic>)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": {LINT_SCHEMA_VERSION},");
    out.push_str("  \"files\": [");
    for (fi, (file, diags)) in files.iter().enumerate() {
        if fi > 0 {
            out.push(',');
        }
        out.push_str("\n    {\n");
        let _ = writeln!(out, "      \"file\": {},", json_str(file));
        out.push_str("      \"diagnostics\": [");
        for (di, d) in diags.iter().enumerate() {
            if di > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(&diag_json(d, "        "));
        }
        if diags.is_empty() {
            out.push_str("],\n");
        } else {
            out.push_str("\n      ],\n");
        }
        let (e, w, i) = Diagnostic::tally(diags);
        let _ = writeln!(
            out,
            "      \"counts\": {{ \"error\": {e}, \"warning\": {w}, \"info\": {i} }}"
        );
        out.push_str("    }");
    }
    if files.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n  ]\n");
    }
    out.push_str("}\n");
    out
}

fn diag_json(d: &Diagnostic, indent: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{indent}{{");
    let _ = writeln!(out, "{indent}  \"rule\": {},", json_str(d.rule.code()));
    let _ = writeln!(
        out,
        "{indent}  \"severity\": {},",
        json_str(&d.severity.to_string())
    );
    let _ = writeln!(out, "{indent}  \"message\": {},", json_str(&d.message));
    let _ = writeln!(out, "{indent}  \"span\": {},", span_json(d.primary));
    let nodes: Vec<String> = d
        .nodes
        .iter()
        .map(|n| {
            format!(
                "{{ \"name\": {}, \"span\": {} }}",
                json_str(&n.name),
                span_json(n.span)
            )
        })
        .collect();
    let _ = writeln!(out, "{indent}  \"nodes\": [{}],", nodes.join(", "));
    let channels: Vec<String> = d
        .channels
        .iter()
        .map(|c| {
            format!(
                "{{ \"endpoints\": {}, \"span\": {} }}",
                json_str(&c.endpoints),
                span_json(c.span)
            )
        })
        .collect();
    let _ = writeln!(out, "{indent}  \"channels\": [{}],", channels.join(", "));
    let related: Vec<String> = d.related.iter().map(|r| json_str(r.code())).collect();
    let _ = writeln!(out, "{indent}  \"related\": [{}],", related.join(", "));
    match d.predicted_throughput {
        Some(t) => {
            let _ = writeln!(
                out,
                "{indent}  \"predicted_throughput\": {{ \"num\": {}, \"den\": {} }},",
                t.num(),
                t.den()
            );
        }
        None => {
            let _ = writeln!(out, "{indent}  \"predicted_throughput\": null,");
        }
    }
    match &d.fix_label {
        Some(fix) => {
            let _ = writeln!(out, "{indent}  \"fix\": {}", json_str(fix));
        }
        None => {
            let _ = writeln!(out, "{indent}  \"fix\": null");
        }
    }
    let _ = write!(out, "{indent}}}");
    out
}

fn span_json(span: Option<Span>) -> String {
    match span {
        Some(s) => format!("{{ \"line\": {}, \"col\": {} }}", s.line, s.col),
        None => "null".to_owned(),
    }
}

/// Minimal JSON string escaping (mirrors the `lip_obs` encoder).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `true` when a diagnostic of `severity` should fail the build on its
/// own (without an explicit `--deny`).
#[must_use]
pub fn fails_by_default(severity: Severity) -> bool {
    severity == Severity::Error
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::lint;
    use lip_graph::{generate, SourceMap};

    #[test]
    fn human_render_mentions_rule_and_prediction() {
        let fig1 = generate::fig1();
        let diags = lint(&fig1.netlist, &SourceMap::new());
        let text = render_human("fig1", &diags);
        assert!(text.contains("warning[LIP004]"), "{text}");
        assert!(text.contains("info[LIP005]"), "{text}");
        assert!(text.contains("predicted steady-state throughput: 4/5"));
        assert!(text.contains("2 diagnostic(s)"));
    }

    #[test]
    fn clean_render_says_clean() {
        assert_eq!(render_human("x", &[]), "x: clean\n");
    }

    #[test]
    fn json_has_schema_version_and_balanced_braces() {
        let fig1 = generate::fig1();
        let diags = lint(&fig1.netlist, &SourceMap::new());
        let json = render_json(&[("fig1".to_owned(), diags)]);
        assert!(json.starts_with("{\n  \"schema_version\": 1,"), "{json}");
        assert!(json.contains("\"rule\": \"LIP004\""));
        assert!(json.contains("\"predicted_throughput\": { \"num\": 4, \"den\": 5 }"));
        let opens = json.chars().filter(|c| "{[".contains(*c)).count();
        let closes = json.chars().filter(|c| "}]".contains(*c)).count();
        assert_eq!(opens, closes, "{json}");
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_file_list_renders() {
        let json = render_json(&[]);
        assert!(json.contains("\"files\": []"));
    }
}
