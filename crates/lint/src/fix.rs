//! Machine-applicable fixes, and the batch applier behind `--fix`.
//!
//! Channel ids are stable under [`Netlist::insert_relay_on_channel`]
//! (the producer keeps the original channel record), so a batch of
//! insertion fix-its collected from one lint pass can be applied
//! sequentially without re-linting in between.

use lip_analysis::{equalize, EqualizeReport};
use lip_core::RelayKind;
use lip_graph::{ChannelId, Netlist, NetlistError, NodeId};
use lip_sim::{NetlistDelta, SettleProgram};

use crate::diag::Diagnostic;

/// A machine-applicable fix attached to a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixIt {
    /// Insert a relay station of `kind` on `channel` (LIP001: a half
    /// relay station restores the minimum stop-saving memory).
    InsertRelay {
        /// The channel to break.
        channel: ChannelId,
        /// The relay station kind to insert.
        kind: RelayKind,
    },
    /// Equalize reconvergent path lengths with spare relay stations
    /// (LIP004), via [`lip_analysis::equalize()`].
    Equalize,
    /// Shrink an over-provisioned FIFO relay station to `capacity`
    /// (LIP007): the model checker proved the extra places unreachable,
    /// so the resize is behaviour-preserving.
    ResizeFifo {
        /// The FIFO relay station to shrink.
        node: NodeId,
        /// The proved-sufficient capacity (always >= 2).
        capacity: u8,
    },
}

/// What [`apply_fixits`] did to the netlist.
#[derive(Debug, Clone, Default)]
pub struct FixReport {
    /// Relay stations inserted by [`FixIt::InsertRelay`] fixes.
    pub inserted: Vec<NodeId>,
    /// FIFO relay stations shrunk by [`FixIt::ResizeFifo`] fixes.
    pub resized: Vec<NodeId>,
    /// Result of the equalization pass, if any fix requested one.
    pub equalized: Option<EqualizeReport>,
}

impl FixReport {
    /// Total number of relay stations added by all fixes.
    #[must_use]
    pub fn total_inserted(&self) -> usize {
        self.inserted.len()
            + self
                .equalized
                .as_ref()
                .map_or(0, EqualizeReport::total_inserted)
    }
}

/// Apply every fix carried by `diags` to `netlist`.
///
/// Relay insertions are applied first (channel ids are stable under
/// insertion), then at most one equalization pass — [`FixIt::Equalize`]
/// operates on the whole netlist, so duplicates collapse.
///
/// # Errors
///
/// Propagates [`NetlistError`] from the equalization pass (it refuses
/// cyclic netlists); insertions themselves cannot fail.
pub fn apply_fixits(
    netlist: &mut Netlist,
    diags: &[Diagnostic],
) -> Result<FixReport, NetlistError> {
    let mut report = FixReport::default();
    let mut want_equalize = false;
    for diag in diags {
        match diag.fix {
            Some(FixIt::InsertRelay { channel, kind }) => {
                report
                    .inserted
                    .push(netlist.insert_relay_on_channel(channel, kind));
            }
            Some(FixIt::ResizeFifo { node, capacity }) => {
                let delta = NetlistDelta::SetRelayKind {
                    node,
                    kind: RelayKind::Fifo(capacity),
                };
                delta.apply_to(netlist); // in-place rewrite, inserts nothing
                report.resized.push(node);
            }
            Some(FixIt::Equalize) => want_equalize = true,
            None => {}
        }
    }
    if want_equalize {
        report.equalized = Some(equalize(netlist)?);
    }
    Ok(report)
}

/// [`apply_fixits`] on the incremental-compilation path: `program` is
/// the already-compiled [`SettleProgram`] of `netlist`, and every relay
/// insertion is applied to both in lockstep as a
/// [`NetlistDelta`] patch (`compile.patch`) instead of deferring a full
/// recompile to the caller. Only the equalization pass — a whole-
/// netlist structural rewrite by `lip_analysis` — falls back to one
/// full recompile (`compile.full`) at the end.
///
/// Afterwards `program` equals `SettleProgram::compile(netlist)`
/// byte-for-byte, so it can key a
/// [`ThroughputCache`](lip_sim::ThroughputCache) or drive an engine
/// directly.
///
/// # Errors
///
/// Propagates [`NetlistError`] from the equalization pass or its
/// recompile; insertions themselves cannot fail.
pub fn apply_fixits_compiled(
    netlist: &mut Netlist,
    program: &mut SettleProgram,
    diags: &[Diagnostic],
) -> Result<FixReport, NetlistError> {
    let mut report = FixReport::default();
    let mut want_equalize = false;
    for diag in diags {
        match diag.fix {
            Some(FixIt::InsertRelay { channel, kind }) => {
                let delta = NetlistDelta::InsertRelay { channel, kind };
                let inserted = delta.apply_to(netlist).expect("insertion returns its id");
                program.recompile_delta(&delta);
                report.inserted.push(inserted);
            }
            Some(FixIt::ResizeFifo { node, capacity }) => {
                let delta = NetlistDelta::SetRelayKind {
                    node,
                    kind: RelayKind::Fifo(capacity),
                };
                delta.apply_to(netlist); // in-place rewrite, inserts nothing
                program.recompile_delta(&delta);
                report.resized.push(node);
            }
            Some(FixIt::Equalize) => want_equalize = true,
            None => {}
        }
    }
    if want_equalize {
        report.equalized = Some(equalize(netlist)?);
        *program = SettleProgram::compile(netlist)?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{RuleId, Severity};
    use lip_graph::generate;

    fn dummy_diag(fix: Option<FixIt>) -> Diagnostic {
        Diagnostic {
            rule: RuleId::Lip001,
            severity: Severity::Warning,
            message: String::new(),
            primary: None,
            nodes: Vec::new(),
            channels: Vec::new(),
            predicted_throughput: None,
            fix,
            fix_label: None,
            related: Vec::new(),
        }
    }

    #[test]
    fn inserts_then_equalizes_once() {
        let fig1 = generate::fig1();
        let mut n = fig1.netlist;
        let first_channel = n.channels().next().unwrap().0;
        let diags = vec![
            dummy_diag(Some(FixIt::InsertRelay {
                channel: first_channel,
                kind: RelayKind::Half,
            })),
            dummy_diag(Some(FixIt::Equalize)),
            dummy_diag(Some(FixIt::Equalize)),
            dummy_diag(None),
        ];
        let before = n.node_count();
        let report = apply_fixits(&mut n, &diags).unwrap();
        assert_eq!(report.inserted.len(), 1);
        // Fig. 1 has imbalance 1, so equalization adds exactly one
        // spare relay station — once, not twice.
        assert_eq!(report.equalized.as_ref().unwrap().total_inserted(), 1);
        assert_eq!(report.total_inserted(), 2);
        assert_eq!(n.node_count(), before + 2);
        n.validate().unwrap();
    }

    #[test]
    fn compiled_applier_keeps_program_in_lockstep() {
        let fig1 = generate::fig1();
        let mut n = fig1.netlist;
        let mut program = SettleProgram::compile(&n).unwrap();
        let channels: Vec<_> = n.channels().map(|(id, _)| id).take(2).collect();
        let diags = vec![
            dummy_diag(Some(FixIt::InsertRelay {
                channel: channels[0],
                kind: RelayKind::Half,
            })),
            dummy_diag(Some(FixIt::InsertRelay {
                channel: channels[1],
                kind: RelayKind::Full,
            })),
            dummy_diag(Some(FixIt::Equalize)),
            dummy_diag(None),
        ];
        let plain_report;
        let fresh = {
            // Reference: the plain applier on a parallel copy.
            let mut m = n.clone();
            plain_report = apply_fixits(&mut m, &diags).unwrap();
            SettleProgram::compile(&m).unwrap()
        };
        let report = apply_fixits_compiled(&mut n, &mut program, &diags).unwrap();
        assert_eq!(report.inserted, plain_report.inserted);
        assert_eq!(report.total_inserted(), plain_report.total_inserted());
        assert_eq!(program, fresh, "patched program != fresh compile");
        assert_eq!(
            program.stable_structural_hash(),
            fresh.stable_structural_hash()
        );
    }

    #[test]
    fn resize_fifo_keeps_program_in_lockstep() {
        let chain = generate::chain(2, 1, RelayKind::Fifo(6));
        let mut n = chain.netlist;
        let mut program = SettleProgram::compile(&n).unwrap();
        let relay = n.relays()[0];
        let diags = vec![dummy_diag(Some(FixIt::ResizeFifo {
            node: relay,
            capacity: 2,
        }))];
        let report = apply_fixits_compiled(&mut n, &mut program, &diags).unwrap();
        assert_eq!(report.resized, vec![relay]);
        assert_eq!(report.total_inserted(), 0);
        assert!(matches!(
            n.node(relay).kind(),
            lip_graph::NodeKind::Relay {
                kind: RelayKind::Fifo(2)
            }
        ));
        assert_eq!(program, SettleProgram::compile(&n).unwrap());

        let mut plain = generate::chain(2, 1, RelayKind::Fifo(6)).netlist;
        let plain_report = apply_fixits(&mut plain, &diags).unwrap();
        assert_eq!(plain_report.resized, vec![relay]);
        assert_eq!(SettleProgram::compile(&plain).unwrap(), program);
    }
}
