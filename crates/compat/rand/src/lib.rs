//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *small* slice of `rand`'s API it actually uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer
//! ranges, [`Rng::gen_bool`], and [`rngs::SmallRng`]. The generator is a
//! seeded splitmix64 stream: deterministic, stable across Rust releases,
//! and statistically ample for test-corpus generation (it is the same
//! mixer `Pattern::Random` in `lip-core` uses).
//!
//! Not a cryptographic RNG; not a full `rand` replacement.

#![forbid(unsafe_code)]

/// Core trait: a source of pseudo-random 64-bit words.
pub trait RngCore {
    /// Next raw word from the stream.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from an integer range (`a..b` or `a..=b`).
    fn gen_range<T, R2>(&mut self, range: R2) -> T
    where
        R2: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits, exactly like rand's f64 sampling.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Small, fast, seedable generator (splitmix64 stream).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // Pre-mix so consecutive seeds do not yield correlated
            // leading draws.
            let mut s = state ^ 0x5851_F42D_4C95_7F2D;
            let _ = splitmix64(&mut s);
            SmallRng { state: s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    /// Std-sized generator; alias of [`SmallRng`] in this subset.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..=5u8);
            assert!(y <= 5);
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(2);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = SmallRng::seed_from_u64(0);
        let mut b = SmallRng::seed_from_u64(1);
        let same = (0..64)
            .filter(|_| a.gen_range(0..8u32) == b.gen_range(0..8u32))
            .count();
        assert!(same < 32, "{same} of 64 draws collide");
    }
}
