//! Offline drop-in subset of the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `proptest` its test-suites use: the `proptest!`
//! macro over `ident in strategy` arguments, integer-range and `any`
//! strategies, `Just`, tuples, `prop_map`/`prop_flat_map`,
//! `prop_oneof!`, `proptest::collection::vec`, `ProptestConfig`, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its exact inputs instead
//!   of a minimised counterexample.
//! * **Deterministic seeding.** Each test derives its RNG seed from the
//!   test's name, so failures reproduce bit-for-bit across runs and
//!   Rust releases (no `.proptest-regressions` files are consulted).
//! * Default case count is 64 (configurable per block via
//!   `ProptestConfig::with_cases`).

#![forbid(unsafe_code)]

use std::fmt;

/// Deterministic RNG driving value generation (splitmix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Build from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty draw");
        self.next_u64() % bound
    }
}

/// FNV-1a over a string; used to derive per-test seeds from test names.
#[must_use]
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Failure raised by `prop_assert*`; carries the rendered message.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure with `message`.
    #[must_use]
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate an intermediate value, then generate from the strategy
    /// `f` builds from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy returning a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed alternatives (see `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from a non-empty option list.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty => $as_u64:expr, $from_u64:expr;)*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let lo = $as_u64(self.start);
                let hi = $as_u64(self.end);
                $from_u64(lo + rng.below(hi - lo))
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = ($as_u64(*self.start()), $as_u64(*self.end()));
                assert!(lo <= hi, "empty range strategy");
                $from_u64(lo + rng.below(hi - lo + 1))
            }
        }
    )*};
}

#[allow(clippy::cast_possible_truncation)]
mod ranges {
    use super::{Strategy, TestRng};
    impl_int_range_strategy! {
        u8 => (|x| u64::from(x)), (|x: u64| x as u8);
        u16 => (|x| u64::from(x)), (|x: u64| x as u16);
        u32 => (|x| u64::from(x)), (|x: u64| x as u32);
        u64 => (|x| x), (|x: u64| x);
        usize => (|x| x as u64), (|x: u64| x as usize);
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize);

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<A> {
    _marker: core::marker::PhantomData<A>,
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The canonical strategy for `A` (`any::<bool>()`, …).
#[must_use]
pub fn any<A: Arbitrary>() -> Any<A> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($n,)+) = self;
                ($($n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// Collection strategies (subset: `vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors of `element` values with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Defines property tests: each `ident in strategy` argument is
/// generated per case; the body may use `prop_assert*` and
/// `return Ok(())`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not for direct use.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let proptest_config: $crate::ProptestConfig = $cfg;
            let mut proptest_rng = $crate::TestRng::new($crate::fnv1a(concat!(
                module_path!(), "::", stringify!($name)
            )));
            for proptest_case in 0..proptest_config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut proptest_rng);)*
                let proptest_inputs: ::std::string::String = [
                    $(format!("  {} = {:?}\n", stringify!($arg), &$arg)),*
                ].concat();
                let proptest_result: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = proptest_result {
                    panic!(
                        "proptest case {}/{} for `{}` failed: {}\ninputs:\n{}",
                        proptest_case + 1,
                        proptest_config.cases,
                        stringify!($name),
                        e,
                        proptest_inputs
                    );
                }
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

/// Uniform choice among listed strategies (all yielding one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Assert inside a proptest body; failure aborts only the current case
/// with its inputs reported.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_any_generate_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let x = Strategy::generate(&(3u32..9), &mut rng);
            assert!((3..9).contains(&x));
            let y = Strategy::generate(&(0usize..=4), &mut rng);
            assert!(y <= 4);
            let _: bool = Strategy::generate(&any::<bool>(), &mut rng);
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = TestRng::new(2);
        for _ in 0..100 {
            let v = Strategy::generate(&crate::collection::vec(0u8..4, 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 4));
        }
    }

    #[test]
    fn oneof_map_flat_map_compose() {
        let s = prop_oneof![Just(1u32), Just(2u32)]
            .prop_map(|x| x * 10)
            .prop_flat_map(|x| (Just(x), 0u32..5));
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let (x, y) = Strategy::generate(&s, &mut rng);
            assert!(x == 10 || x == 20);
            assert!(y < 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_asserts(a in 0u64..100, flip in any::<bool>()) {
            prop_assert!(a < 100);
            if flip {
                return Ok(());
            }
            prop_assert_eq!(a, a, "identity must hold");
            prop_assert_ne!(a, a + 1);
        }
    }
}
