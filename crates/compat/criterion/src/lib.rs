//! Offline drop-in subset of the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of criterion's API its benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkGroup::bench_function`], [`BenchmarkGroup::throughput`],
//! [`BenchmarkId`], [`Bencher::iter`] and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: every benchmark gets a fixed warm-up, then timed
//! batches until a wall-clock budget is spent; the reported figure is
//! the median batch time per iteration. No statistics, plots or HTML
//! reports — results print as `name  time: [median ns]` lines, and the
//! raw samples are available to callers through
//! [`Criterion::take_results`] so experiment binaries can persist them.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier `group/function/parameter` for one benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Id from a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }

    fn render(&self, group: &str) -> String {
        match (self.function.is_empty(), self.parameter.is_empty()) {
            (true, true) => group.to_string(),
            (true, false) => format!("{group}/{}", self.parameter),
            (false, true) => format!("{group}/{}", self.function),
            (false, false) => format!("{group}/{}/{}", self.function, self.parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: String::new(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: String::new(),
        }
    }
}

/// Work performed per iteration, for rate reporting — mirrors
/// criterion's `Throughput`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many abstract elements (e.g. lane-cycles).
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// One measured benchmark: id and median nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Rendered `group/function/parameter` name.
    pub name: String,
    /// Median time per iteration, nanoseconds.
    pub median_ns: f64,
    /// Number of timed iterations behind the estimate.
    pub iterations: u64,
    /// Declared per-iteration throughput, if the group set one.
    pub throughput: Option<Throughput>,
}

/// Top-level driver handed to `criterion_group!` targets.
#[derive(Debug)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(150),
            measurement: Duration::from_millis(600),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Set the per-benchmark warm-up budget.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Set the per-benchmark measurement budget.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let name = id.render("");
        let name = name.trim_start_matches('/').to_string();
        self.run_one(name, None, f);
        self
    }

    /// Drain all results measured so far (for persisting to disk).
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }

    fn run_one<F>(&mut self, name: String, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            samples: Vec::new(),
            iterations: 0,
        };
        f(&mut b);
        let mut samples = b.samples;
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median_ns = if samples.is_empty() {
            f64::NAN
        } else {
            samples[samples.len() / 2]
        };
        let rate = throughput.map(|t| {
            let (n, unit) = match t {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            format!("  thrpt: [{:.3e} {unit}]", n as f64 / (median_ns / 1e9))
        });
        println!(
            "{name:<55} time: [{median_ns:>12.1} ns/iter]{}  ({} iters)",
            rate.unwrap_or_default(),
            b.iterations
        );
        self.results.push(BenchResult {
            name,
            median_ns,
            iterations: b.iterations,
            throughput,
        });
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Benchmark `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = id.render(&self.name);
        let throughput = self.throughput;
        self.criterion.run_one(name, throughput, |b| f(b, input));
        self
    }

    /// Benchmark a closure with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into().render(&self.name);
        let throughput = self.throughput;
        self.criterion.run_one(name, throughput, |b| f(b));
        self
    }

    /// Declare the work each iteration performs; subsequent benchmarks
    /// in the group report an `elem/s` (or `B/s`) rate next to the
    /// time, mirroring criterion's rate lines.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; sampling is time-budgeted here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    samples: Vec<f64>,
    iterations: u64,
}

impl Bencher {
    /// Time `routine`, called repeatedly until the measurement budget is
    /// spent.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: run until the warm-up budget elapses.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        // Choose a batch size targeting ~1ms per batch.
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        let batch = ((1_000_000.0 / per_iter.max(1.0)) as u64).clamp(1, 1_000_000);
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measurement {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed().as_nanos() as f64;
            self.samples.push(dt / batch as f64);
            self.iterations += batch;
        }
    }
}

/// Declare a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &x| {
            b.iter(|| x * x);
        });
        group.finish();
        let results = c.take_results();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].name, "g/square/7");
        assert!(results[0].median_ns >= 0.0);
        assert!(results[0].iterations > 0);
    }

    #[test]
    fn ids_render_all_forms() {
        assert_eq!(BenchmarkId::new("f", "p").render("g"), "g/f/p");
        assert_eq!(BenchmarkId::from_parameter(3).render("g"), "g/3");
        assert_eq!(BenchmarkId::from("f").render("g"), "g/f");
    }
}
