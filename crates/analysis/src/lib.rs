//! Performance analysis and structural optimisation of
//! latency-insensitive designs — the quantitative half of the paper.
//!
//! * [`model`] — the marked-graph minimum-cycle-ratio model: exact
//!   steady-state throughput of any legal netlist, generalising every
//!   closed form in the paper;
//! * [`formulas`] — the paper's closed forms: trees
//!   (`T = 1`), reconvergent feed-forward (`T = (m − i)/m`), feedback
//!   loops (`T = S/(S+R)`), plus [`predict_throughput`] combining the
//!   model with environment rates;
//! * [`transient`](mod@crate::transient) — the upfront transient-length
//!   bound the deadlock recipe relies on;
//! * [`equalize`](mod@crate::equalize) — path equalization by spare relay
//!   stations;
//! * [`cure`](mod@crate::cure) — minimum-memory insertion and the
//!   half-station-in-loop deadlock cure.
//!
//! # Example
//!
//! Predict Fig. 1 without simulating, then confirm by simulation:
//!
//! ```
//! use lip_analysis::predict_throughput;
//! use lip_graph::generate;
//! use lip_sim::{measure, Ratio};
//!
//! # fn main() -> Result<(), lip_graph::NetlistError> {
//! let fig1 = generate::fig1();
//! let predicted = predict_throughput(&fig1.netlist).expect("periodic env");
//! assert_eq!(predicted, Ratio::new(4, 5));
//! assert_eq!(measure(&fig1.netlist)?.system_throughput(), Some(predicted));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod cure;
pub mod equalize;
pub mod formulas;
pub mod model;
pub mod pipeline;
pub mod search;
pub mod transient;

pub use cure::{cure_deadlocks, enforce_min_memory, half_relays_in_loops, CureReport};
pub use equalize::{equalize, EqualizeReport};
pub use formulas::{
    closed_form, loop_throughput, predict_throughput, reconvergent_throughput, tree_throughput,
    ClosedForm,
};
pub use model::MarkedGraph;
pub use pipeline::{pipeline_wires, PipelineReport, WireLatency};
pub use search::{minimal_equalizing_capacity, size_each_relay, CapacityChoice};
pub use transient::transient_bound;
