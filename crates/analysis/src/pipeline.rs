//! Wire pipelining: the methodology step that motivates the whole
//! paper — "the performance of future Systems-on-Chip will be limited by
//! the latency of long interconnects requiring more than one clock cycle
//! for the signals to propagate".
//!
//! Given post-floorplan wire latencies, [`pipeline_wires`] inserts the
//! required relay stations: `latency` full stations on every wire that
//! needs `latency` extra cycles, and — per the paper's minimum-memory
//! rule — a half station on any remaining zero-latency shell-to-shell
//! wire.

use lip_core::RelayKind;
use lip_graph::{ChannelId, Netlist, NodeId};

/// One wire's physical annotation: the channel and how many clock
/// cycles its wire needs beyond the same-cycle reach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireLatency {
    /// The annotated channel.
    pub channel: ChannelId,
    /// Extra clock cycles of wire delay (0 = reachable in-cycle).
    pub cycles: u64,
}

/// Result of [`pipeline_wires`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineReport {
    /// Full relay stations inserted, per annotated channel.
    pub full_inserted: Vec<(ChannelId, Vec<NodeId>)>,
    /// Half stations inserted on zero-latency shell-to-shell wires.
    pub half_inserted: Vec<(ChannelId, NodeId)>,
}

impl PipelineReport {
    /// Total stations inserted.
    #[must_use]
    pub fn total_inserted(&self) -> usize {
        self.full_inserted
            .iter()
            .map(|(_, v)| v.len())
            .sum::<usize>()
            + self.half_inserted.len()
    }
}

/// Insert the relay stations demanded by the wire annotations:
/// `cycles` full stations per annotated channel, then a half station on
/// every remaining direct shell-to-shell channel (minimum memory).
/// Channels not mentioned are treated as zero-latency.
///
/// # Panics
///
/// Panics if an annotation references a channel of another netlist.
pub fn pipeline_wires(netlist: &mut Netlist, wires: &[WireLatency]) -> PipelineReport {
    let mut report = PipelineReport::default();
    for w in wires {
        if w.cycles == 0 {
            continue;
        }
        let mut inserted = Vec::new();
        let mut target = w.channel;
        for _ in 0..w.cycles {
            let rs = netlist.insert_relay_on_channel(target, RelayKind::Full);
            target = netlist.out_channel(rs, 0).expect("just connected");
            inserted.push(rs);
        }
        report.full_inserted.push((w.channel, inserted));
    }
    for ch in netlist.shell_to_shell_channels() {
        let rs = netlist.insert_relay_on_channel(ch, RelayKind::Half);
        report.half_inserted.push((ch, rs));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_core::pearl::IdentityPearl;
    use lip_sim::{measure, Ratio, System};

    fn two_stage() -> (Netlist, ChannelId, lip_graph::NodeId) {
        let mut n = Netlist::new();
        let src = n.add_source("in");
        let a = n.add_shell("a", IdentityPearl::new());
        let b = n.add_shell("b", IdentityPearl::new());
        let out = n.add_sink("out");
        let chans = n.chain(&[src, a, b, out]).unwrap();
        (n, chans[1], out)
    }

    #[test]
    fn inserts_full_stations_per_annotation() {
        let (mut n, ab, _) = two_stage();
        let report = pipeline_wires(
            &mut n,
            &[WireLatency {
                channel: ab,
                cycles: 3,
            }],
        );
        assert_eq!(report.total_inserted(), 3);
        assert_eq!(n.census().full_relays, 3);
        assert!(n.shell_to_shell_channels().is_empty());
        n.validate().unwrap();
    }

    #[test]
    fn covers_unannotated_shell_wires_with_half_stations() {
        let (mut n, _, _) = two_stage();
        let report = pipeline_wires(&mut n, &[]);
        assert_eq!(report.full_inserted.len(), 0);
        assert_eq!(report.half_inserted.len(), 1);
        assert_eq!(n.census().half_relays, 1);
        n.validate().unwrap();
    }

    #[test]
    fn zero_cycles_annotation_still_gets_minimum_memory() {
        let (mut n, ab, _) = two_stage();
        let report = pipeline_wires(
            &mut n,
            &[WireLatency {
                channel: ab,
                cycles: 0,
            }],
        );
        assert_eq!(report.half_inserted.len(), 1);
        assert_eq!(report.total_inserted(), 1);
    }

    #[test]
    fn pipelined_design_keeps_streams_and_throughput() {
        let (reference, _, r_out) = two_stage();
        let (mut n, ab, out) = two_stage();
        pipeline_wires(
            &mut n,
            &[WireLatency {
                channel: ab,
                cycles: 4,
            }],
        );

        let mut a = System::new(&reference).unwrap();
        let mut b = System::new(&n).unwrap();
        a.run(80);
        b.run(80);
        let ra = a.sink(r_out).unwrap().received();
        let rb = b.sink(out).unwrap().received();
        assert_eq!(&ra[..rb.len()], rb, "pipelining changed data");
        assert_eq!(
            measure(&n).unwrap().system_throughput(),
            Some(Ratio::new(1, 1))
        );
    }
}
