//! Transient-length prediction.
//!
//! The paper: *"after a number of clock cycles that are dependent on the
//! system each part of it behaves in a periodic fashion"*, and for the
//! deadlock recipe: *"the transient length is related to the number of
//! relay stations and shells, and can be predicted upfront"*.
//!
//! [`transient_bound`] computes that upfront prediction: a conservative
//! cycle count by which the control state must have entered its periodic
//! regime. The empirical transient (measured by
//! [`find_periodicity`](lip_sim::measure::find_periodicity)) is asserted
//! against this bound over the whole topology corpus in the tests and in
//! experiment `EXP-T7`.

use lip_graph::topology::longest_latency;
use lip_graph::{Netlist, NodeKind};

/// Conservative upper bound on the transient duration of `netlist`'s
/// control behaviour, in cycles.
///
/// Rationale: initialization voids must flush along the longest forward
/// path (the paper's tree bound: "the initial latency ... can be as much
/// as the longest path"); in cyclic systems, tokens additionally
/// redistribute around loops, which takes at most one full recirculation
/// per storage element. Summing forward latency, total buffering
/// capacity and the environment period dominates both effects; the
/// corpus tests check the measured transient never exceeds it.
#[must_use]
pub fn transient_bound(netlist: &Netlist) -> u64 {
    let mut latency = 0u64;
    let mut capacity = 0u64;
    let mut env = 1u64;
    for (_, node) in netlist.nodes() {
        match node.kind() {
            NodeKind::Shell { pearl, buffered } => {
                latency += 1;
                capacity += pearl.num_outputs() as u64;
                if *buffered {
                    capacity += pearl.num_inputs() as u64;
                }
            }
            NodeKind::Relay { kind } => {
                latency += kind.forward_latency();
                capacity += kind.capacity() as u64;
            }
            NodeKind::Source { void_pattern } => {
                env = lcm(env, void_pattern.period().unwrap_or(1));
            }
            NodeKind::Sink { stop_pattern } => {
                env = lcm(env, stop_pattern.period().unwrap_or(1));
            }
        }
    }
    // For acyclic systems the longest path is a tighter latency term.
    let path = longest_latency(netlist).unwrap_or(latency);
    path + latency + capacity + env
}

fn lcm(a: u64, b: u64) -> u64 {
    fn gcd(mut a: u64, mut b: u64) -> u64 {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    }
    if a == 0 || b == 0 {
        return a.max(b).max(1);
    }
    (a / gcd(a, b)).saturating_mul(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_core::RelayKind;
    use lip_graph::generate;
    use lip_sim::measure::find_periodicity;
    use lip_sim::System;

    fn measured_transient(netlist: &Netlist) -> Option<u64> {
        let mut sys = System::new(netlist).ok()?;
        find_periodicity(&mut sys, 50_000).map(|p| p.transient)
    }

    #[test]
    fn bound_holds_for_fig1() {
        let f = generate::fig1();
        let bound = transient_bound(&f.netlist);
        let measured = measured_transient(&f.netlist).unwrap();
        assert!(measured <= bound, "measured {measured} > bound {bound}");
    }

    #[test]
    fn bound_holds_for_rings() {
        for (s, r) in [(1usize, 1usize), (2, 2), (3, 1)] {
            let ring = generate::ring(s, r, RelayKind::Full);
            let bound = transient_bound(&ring.netlist);
            let measured = measured_transient(&ring.netlist).unwrap();
            assert!(measured <= bound, "ring({s},{r}): {measured} > {bound}");
        }
    }

    #[test]
    fn bound_holds_over_random_corpus() {
        for seed in 0..60u64 {
            let (fam, netlist) = generate::random_family(seed);
            if netlist.validate().is_err() {
                continue;
            }
            let bound = transient_bound(&netlist);
            if let Some(measured) = measured_transient(&netlist) {
                assert!(
                    measured <= bound,
                    "seed {seed} {fam:?}: transient {measured} > bound {bound}"
                );
            }
        }
    }

    #[test]
    fn tree_bound_reflects_longest_path() {
        // The paper: tree transient can be as much as the longest path.
        let t = generate::tree(3, 2, 2);
        let bound = transient_bound(&t.netlist);
        let longest = longest_latency(&t.netlist).unwrap();
        assert!(bound >= longest);
        let measured = measured_transient(&t.netlist).unwrap();
        assert!(measured <= bound);
        // Trees settle quickly: the measured transient is within the
        // longest-path order, far below pathological bounds.
        assert!(
            measured <= longest + 2,
            "measured {measured}, longest {longest}"
        );
    }

    use lip_graph::Netlist;
}
