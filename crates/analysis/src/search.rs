//! Measured capacity searches with memoized simulation.
//!
//! Queue-sizing (the paper's reference \[5\], Carloni &
//! Sangiovanni-Vincentelli DAC'00) trades *station insertion* for
//! *queue deepening*: instead of adding relay stations to a short
//! reconvergent branch, deepen the FIFO already there until the slack
//! matches. Finding the minimal sufficient capacity is a search over
//! candidate netlists, each of which costs a simulation to steady
//! state — and searches over several relays (or repeated analysis
//! passes) keep re-proposing structurally identical configurations.
//! Every function here therefore measures through a caller-supplied
//! [`ThroughputCache`], so each distinct compiled structure is
//! simulated exactly once per cache lifetime.
//!
//! Throughput is monotone non-decreasing in any FIFO's capacity (more
//! slack never slows a latency-insensitive system), which lets the
//! minimal-capacity search bisect the capacity range instead of
//! scanning it.

use lip_core::RelayKind;
use lip_graph::{Netlist, NetlistError, NodeId};
use lip_sim::{Ratio, ThroughputCache};

/// Outcome of a minimal-capacity search for one relay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityChoice {
    /// The relay that was resized.
    pub relay: NodeId,
    /// Smallest capacity achieving `throughput`.
    pub capacity: u8,
    /// The best throughput reachable by deepening this relay alone
    /// (its value at `max_cap`).
    pub throughput: Ratio,
}

/// Throughput of `netlist` with `relay` replaced by a capacity-`k`
/// FIFO, via the memo table.
fn throughput_at(
    netlist: &Netlist,
    relay: NodeId,
    k: u8,
    cache: &mut ThroughputCache,
) -> Result<Ratio, NetlistError> {
    let mut candidate = netlist.clone();
    candidate.set_relay_kind(relay, RelayKind::Fifo(k));
    let m = cache.measure(&candidate)?;
    Ok(m.system_throughput()
        .expect("netlist has at least one sink"))
}

/// Find the smallest FIFO capacity in `2..=max_cap` (FIFO stations need
/// at least two places) for `relay` that reaches the best throughput
/// deepening this relay can buy, by bisection over the monotone
/// capacity→throughput curve. All simulations go through `cache`;
/// re-running the search (or running it for another relay that produces
/// identical structures) costs no simulation for already-seen
/// configurations.
///
/// # Errors
///
/// Propagates [`NetlistError`] from elaboration.
///
/// # Panics
///
/// Panics if `max_cap < 2`, `relay` is not a relay station, or the
/// netlist has no sink.
pub fn minimal_equalizing_capacity(
    netlist: &Netlist,
    relay: NodeId,
    max_cap: u8,
    cache: &mut ThroughputCache,
) -> Result<CapacityChoice, NetlistError> {
    assert!(max_cap >= 2, "fifo stations need capacity >= 2");
    // Ambient flight-recorder span + probe counter: capacity searches
    // dominate equalization sweeps, so attribute their wall-clock and
    // candidate count when a recorder is installed.
    let _bisect_span = lip_obs::flight::global_span("analysis", "capacity_bisect");
    let best = throughput_at(netlist, relay, max_cap, cache)?;
    lip_obs::flight::global_add("analysis.capacity_probes", 1);
    let (mut lo, mut hi) = (2u8, max_cap);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        lip_obs::flight::global_add("analysis.capacity_probes", 1);
        if throughput_at(netlist, relay, mid, cache)? == best {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok(CapacityChoice {
        relay,
        capacity: lo,
        throughput: best,
    })
}

/// [`minimal_equalizing_capacity`] for each relay independently,
/// sharing one memo table — the batch form the queue-sizing experiment
/// uses to compare candidate stations.
///
/// # Errors
///
/// Propagates [`NetlistError`] from elaboration.
pub fn size_each_relay(
    netlist: &Netlist,
    relays: &[NodeId],
    max_cap: u8,
    cache: &mut ThroughputCache,
) -> Result<Vec<CapacityChoice>, NetlistError> {
    relays
        .iter()
        .map(|&r| minimal_equalizing_capacity(netlist, r, max_cap, cache))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_graph::generate;

    #[test]
    fn fig1_short_branch_equalizes_at_capacity_three() {
        // Paper/DAC'00: T = min(1, (k+2)/5), so capacity 3 is the knee.
        let f = generate::fig1();
        let mut cache = ThroughputCache::new();
        let choice =
            minimal_equalizing_capacity(&f.netlist, f.short_relays[0], 6, &mut cache).unwrap();
        assert_eq!(choice.capacity, 3);
        assert_eq!(choice.throughput, Ratio::new(1, 1));
        assert!(cache.misses() >= 2, "bisection must simulate");
    }

    #[test]
    fn rerunning_the_search_is_fully_memoized() {
        let f = generate::fig1();
        let mut cache = ThroughputCache::new();
        let first =
            minimal_equalizing_capacity(&f.netlist, f.short_relays[0], 6, &mut cache).unwrap();
        let misses = cache.misses();
        let second =
            minimal_equalizing_capacity(&f.netlist, f.short_relays[0], 6, &mut cache).unwrap();
        assert_eq!(first, second);
        assert_eq!(cache.misses(), misses, "second run must not simulate");
        assert!(cache.hits() >= misses);
    }

    #[test]
    fn loop_relays_cannot_buy_throughput_with_depth() {
        // Rings are latency-bound: the best reachable equals capacity 1…
        let ring = generate::ring(2, 1, lip_core::RelayKind::Full);
        let mut cache = ThroughputCache::new();
        let choices = size_each_relay(&ring.netlist, &ring.relays, 5, &mut cache).unwrap();
        for c in &choices {
            assert_eq!(c.capacity, 2, "relay {}: depth bought nothing", c.relay);
            assert_eq!(c.throughput, Ratio::new(2, 3));
        }
    }
}
