//! Measured capacity searches with memoized simulation.
//!
//! Queue-sizing (the paper's reference \[5\], Carloni &
//! Sangiovanni-Vincentelli DAC'00) trades *station insertion* for
//! *queue deepening*: instead of adding relay stations to a short
//! reconvergent branch, deepen the FIFO already there until the slack
//! matches. Finding the minimal sufficient capacity is a search over
//! candidate netlists, each of which costs a simulation to steady
//! state — and searches over several relays (or repeated analysis
//! passes) keep re-proposing structurally identical configurations.
//! Every function here therefore measures through a caller-supplied
//! [`ThroughputCache`], so each distinct compiled structure is
//! simulated exactly once per cache lifetime.
//!
//! Throughput is monotone non-decreasing in any FIFO's capacity (more
//! slack never slows a latency-insensitive system), which lets the
//! minimal-capacity search bisect the capacity range instead of
//! scanning it.
//!
//! Since the incremental-compilation layer landed, probes run on the
//! **patch path**: a search compiles the input netlist once
//! (`compile.full`), then every candidate capacity is a
//! [`patch_relay_kind`](lip_sim::SettleProgram::patch_relay_kind) /
//! [`patch_fifo_capacity`](lip_sim::SettleProgram::patch_fifo_capacity)
//! on that one program (`compile.patch`) and a program-keyed cache
//! lookup — a cache hit never clones, compiles or simulates anything.

use lip_core::RelayKind;
use lip_graph::{Netlist, NetlistError, NodeId, NodeKind};
use lip_sim::{NetlistDelta, Ratio, SettleProgram, ThroughputCache};

/// Outcome of a minimal-capacity search for one relay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityChoice {
    /// The relay that was resized.
    pub relay: NodeId,
    /// Smallest capacity achieving `throughput`.
    pub capacity: u8,
    /// The best throughput reachable by deepening this relay alone
    /// (its value at `max_cap`).
    pub throughput: Ratio,
}

/// One working candidate shared by every probe of a search: a netlist
/// copy and its compiled program, mutated in lockstep through the
/// incremental patch layer so a whole bisection (or a batch over many
/// relays) pays exactly one full compile.
struct Prober {
    netlist: Netlist,
    program: SettleProgram,
}

impl Prober {
    fn new(netlist: &Netlist) -> Result<Self, NetlistError> {
        let netlist = netlist.clone();
        let program = SettleProgram::compile(&netlist)?;
        Ok(Prober { netlist, program })
    }

    /// Throughput with `relay` set to kind `kind`, via the memo table.
    /// The edit is a program patch; only a cache miss materialises a
    /// netlist (by cloning the already-edited working copy).
    fn throughput_with(
        &mut self,
        relay: NodeId,
        kind: RelayKind,
        cache: &mut ThroughputCache,
    ) -> Result<Ratio, NetlistError> {
        let delta = NetlistDelta::SetRelayKind { node: relay, kind };
        delta.apply_to(&mut self.netlist);
        self.program.recompile_delta(&delta);
        let netlist = &self.netlist;
        let m =
            cache.measure_program_with(&self.program, Default::default(), || netlist.clone())?;
        Ok(m.system_throughput()
            .expect("netlist has at least one sink"))
    }

    /// The current kind of `relay` in the working copy.
    fn relay_kind(&self, relay: NodeId) -> RelayKind {
        match self.netlist.node(relay).kind() {
            NodeKind::Relay { kind } => *kind,
            _ => panic!("{relay} is not a relay station"),
        }
    }
}

/// Find the smallest FIFO capacity in `2..=max_cap` (FIFO stations need
/// at least two places) for `relay` that reaches the best throughput
/// deepening this relay can buy, by bisection over the monotone
/// capacity→throughput curve. All simulations go through `cache`;
/// re-running the search (or running it for another relay that produces
/// identical structures) costs no simulation for already-seen
/// configurations.
///
/// # Errors
///
/// Propagates [`NetlistError`] from elaboration.
///
/// # Panics
///
/// Panics if `max_cap < 2`, `relay` is not a relay station, or the
/// netlist has no sink.
pub fn minimal_equalizing_capacity(
    netlist: &Netlist,
    relay: NodeId,
    max_cap: u8,
    cache: &mut ThroughputCache,
) -> Result<CapacityChoice, NetlistError> {
    let mut prober = Prober::new(netlist)?;
    bisect_one(&mut prober, relay, max_cap, cache)
}

/// The bisection body, probing through an existing [`Prober`] so
/// callers searching several relays share one compiled program.
fn bisect_one(
    prober: &mut Prober,
    relay: NodeId,
    max_cap: u8,
    cache: &mut ThroughputCache,
) -> Result<CapacityChoice, NetlistError> {
    assert!(max_cap >= 2, "fifo stations need capacity >= 2");
    // Ambient flight-recorder span + probe counter: capacity searches
    // dominate equalization sweeps, so attribute their wall-clock and
    // candidate count when a recorder is installed.
    let _bisect_span = lip_obs::flight::global_span("analysis", "capacity_bisect");
    let best = prober.throughput_with(relay, RelayKind::Fifo(max_cap), cache)?;
    lip_obs::flight::global_add("analysis.capacity_probes", 1);
    let (mut lo, mut hi) = (2u8, max_cap);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        lip_obs::flight::global_add("analysis.capacity_probes", 1);
        if prober.throughput_with(relay, RelayKind::Fifo(mid), cache)? == best {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok(CapacityChoice {
        relay,
        capacity: lo,
        throughput: best,
    })
}

/// [`minimal_equalizing_capacity`] for each relay independently,
/// sharing one memo table *and one compiled program* — the batch form
/// the queue-sizing experiment uses to compare candidate stations.
/// After each relay's search its original kind is patched back, so
/// every relay is probed against the input configuration without a
/// recompile.
///
/// # Errors
///
/// Propagates [`NetlistError`] from elaboration.
pub fn size_each_relay(
    netlist: &Netlist,
    relays: &[NodeId],
    max_cap: u8,
    cache: &mut ThroughputCache,
) -> Result<Vec<CapacityChoice>, NetlistError> {
    let mut prober = Prober::new(netlist)?;
    relays
        .iter()
        .map(|&r| {
            let original = prober.relay_kind(r);
            let choice = bisect_one(&mut prober, r, max_cap, cache)?;
            let delta = NetlistDelta::SetRelayKind {
                node: r,
                kind: original,
            };
            delta.apply_to(&mut prober.netlist);
            prober.program.recompile_delta(&delta);
            Ok(choice)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_graph::generate;

    #[test]
    fn fig1_short_branch_equalizes_at_capacity_three() {
        // Paper/DAC'00: T = min(1, (k+2)/5), so capacity 3 is the knee.
        let f = generate::fig1();
        let mut cache = ThroughputCache::new();
        let choice =
            minimal_equalizing_capacity(&f.netlist, f.short_relays[0], 6, &mut cache).unwrap();
        assert_eq!(choice.capacity, 3);
        assert_eq!(choice.throughput, Ratio::new(1, 1));
        assert!(cache.misses() >= 2, "bisection must simulate");
    }

    #[test]
    fn rerunning_the_search_is_fully_memoized() {
        let f = generate::fig1();
        let mut cache = ThroughputCache::new();
        let first =
            minimal_equalizing_capacity(&f.netlist, f.short_relays[0], 6, &mut cache).unwrap();
        let misses = cache.misses();
        let second =
            minimal_equalizing_capacity(&f.netlist, f.short_relays[0], 6, &mut cache).unwrap();
        assert_eq!(first, second);
        assert_eq!(cache.misses(), misses, "second run must not simulate");
        assert!(cache.hits() >= misses);
    }

    #[test]
    fn loop_relays_cannot_buy_throughput_with_depth() {
        // Rings are latency-bound: the best reachable equals capacity 1…
        let ring = generate::ring(2, 1, lip_core::RelayKind::Full);
        let mut cache = ThroughputCache::new();
        let choices = size_each_relay(&ring.netlist, &ring.relays, 5, &mut cache).unwrap();
        for c in &choices {
            assert_eq!(c.capacity, 2, "relay {}: depth bought nothing", c.relay);
            assert_eq!(c.throughput, Ratio::new(2, 3));
        }
    }
}
