//! The marked-graph performance model: exact steady-state throughput of
//! any legal latency-insensitive netlist as a minimum cycle ratio.
//!
//! Every storage element of the protocol contributes two constraint
//! edges between its producer `u` and its consumer `v`:
//!
//! * a **forward** edge `u → v` carrying the element's initial
//!   informative tokens, with the element's forward latency as delay;
//! * a **backward** edge `v → u` carrying the element's free *spaces*
//!   (capacity − tokens), with the latency of its back-pressure path as
//!   delay (1 for relay stations, whose `stop` is registered; 0 for
//!   shells, whose stop traverses combinationally).
//!
//! A firing consumes a token forward and a space backward, so in steady
//! state every directed cycle `c` bounds the throughput by
//! `tokens(c)/delay(c)`; the binding constraint is the **minimum cycle
//! ratio**. This generalises both formulas in the paper: a ring of `S`
//! shells (1 token, 1 delay each) and `R` full relay stations (0 tokens,
//! 1 delay) yields `S/(S+R)`; the implicit fork-join loop of Fig. 1
//! yields `(m − i)/m`. It also covers half relay stations, mixed loops
//! and compositions exactly — the test-suite checks it against simulated
//! throughput over the whole topology corpus.

use lip_core::{Pattern, RelayKind};
use lip_graph::{Netlist, NodeId, NodeKind};
use lip_sim::Ratio;

/// One constraint edge of the marked-graph model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelEdge {
    /// Origin node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
    /// Initial tokens (data forward, spaces backward).
    pub tokens: u64,
    /// Latency in cycles.
    pub delay: u64,
}

/// The constraint graph extracted from a netlist.
#[derive(Debug, Clone)]
pub struct MarkedGraph {
    node_count: usize,
    edges: Vec<ModelEdge>,
}

impl MarkedGraph {
    /// Build the model of `netlist`.
    ///
    /// Sources and sinks contribute no constraints here (they neither
    /// run out of tokens nor of spaces); their rate limits from void and
    /// stop patterns are handled by
    /// [`predict_throughput`](crate::predict_throughput).
    #[must_use]
    pub fn new(netlist: &Netlist) -> Self {
        let mut edges = Vec::new();
        for (_, ch) in netlist.channels() {
            let u = ch.producer.node;
            let v = ch.consumer.node;
            // Storage parameters of the producer's output element.
            let (fwd_delay, tokens, capacity, bwd_delay) = match netlist.node(u).kind() {
                NodeKind::Shell { .. } => (1u64, 1u64, 1u64, 0u64),
                NodeKind::Relay {
                    kind: RelayKind::Full,
                } => (1, 0, 2, 1),
                NodeKind::Relay {
                    kind: RelayKind::Half,
                } => (0, 0, 1, 1),
                NodeKind::Relay {
                    kind: RelayKind::Fifo(k),
                } => (1, 0, u64::from(*k), 1),
                NodeKind::Source { .. } => continue,
                NodeKind::Sink { .. } => unreachable!("sinks have no outputs"),
            };
            edges.push(ModelEdge {
                from: u,
                to: v,
                tokens,
                delay: fwd_delay,
            });
            // Sinks apply no sustained back-pressure in free flow.
            if !matches!(netlist.node(v).kind(), NodeKind::Sink { .. }) {
                // A buffered-shell consumer fuses a one-place skid
                // buffer (a half station) into its input: one extra
                // space and one extra cycle on the backward path.
                let buffered = netlist.node(v).kind().is_buffered_shell();
                edges.push(ModelEdge {
                    from: v,
                    to: u,
                    tokens: capacity - tokens + u64::from(buffered),
                    delay: bwd_delay + u64::from(buffered),
                });
            }
        }
        MarkedGraph {
            node_count: netlist.node_count(),
            edges,
        }
    }

    /// The constraint edges.
    #[must_use]
    pub fn edges(&self) -> &[ModelEdge] {
        &self.edges
    }

    /// Minimum cycle ratio `tokens/delay` over all directed cycles,
    /// capped at 1 (a LID never exceeds one token per cycle). Returns
    /// `Ratio::new(1, 1)` when no constraining cycle exists (pure
    /// feed-forward systems).
    ///
    /// Exact: iteratively extracts a cycle with ratio below the current
    /// bound (Bellman-Ford negative-cycle detection under integer
    /// cross-multiplied weights) and tightens the bound to that cycle's
    /// exact ratio, until no better cycle exists.
    #[must_use]
    pub fn min_cycle_ratio(&self) -> Ratio {
        let mut best = Ratio::new(1, 1);
        // A zero-delay, zero-token cycle would be a combinational loop;
        // the netlist validator excludes it, but guard anyway.
        while let Some(cycle) = self.cycle_below(best) {
            let tokens: u64 = cycle.iter().map(|e| e.tokens).sum();
            let delay: u64 = cycle.iter().map(|e| e.delay).sum();
            debug_assert!(delay > 0, "combinational loop in model");
            if delay == 0 {
                break;
            }
            let r = Ratio::new(tokens, delay);
            debug_assert!(
                r.num() * best.den() < best.num() * r.den(),
                "cycle extraction must improve the bound"
            );
            best = r;
        }
        best
    }

    /// The cycle achieving the minimum ratio, as edges in traversal
    /// order, together with that ratio — the design's *bottleneck*.
    /// Returns `None` when nothing constrains the design below `T = 1`
    /// (trees, balanced fork-joins, sufficiently tokenised loops).
    ///
    /// Designers use this to know *which* loop to attack: insert spare
    /// stations on its backward (space) segment, or remove latency from
    /// its forward segment.
    #[must_use]
    pub fn binding_cycle(&self) -> Option<(Vec<ModelEdge>, Ratio)> {
        let best = self.min_cycle_ratio();
        if best == Ratio::new(1, 1) {
            return None; // nothing constrains below full rate
        }
        // Find a cycle achieving `best` exactly: none is strictly below
        // it, so probe with the next larger rational step (denominator
        // scaled by the total delay, which dominates every cycle).
        let total_delay: u64 = self.edges.iter().map(|e| e.delay).sum::<u64>().max(1);
        let probe = Ratio::new(best.num() * total_delay + 1, best.den() * total_delay);
        let cycle = self.cycle_below(probe)?;
        let tokens: u64 = cycle.iter().map(|e| e.tokens).sum();
        let delay: u64 = cycle.iter().map(|e| e.delay).sum();
        Some((cycle, Ratio::new(tokens, delay)))
    }

    /// Find a cycle with ratio strictly below `bound`, if any.
    ///
    /// Uses weights `w(e) = bound.den * tokens(e) − bound.num * delay(e)`
    /// (a cycle is negative iff its ratio < bound) and Bellman-Ford from
    /// a virtual source; on detection, walks predecessors to extract the
    /// cycle.
    fn cycle_below(&self, bound: Ratio) -> Option<Vec<ModelEdge>> {
        let n = self.node_count;
        let w = |e: &ModelEdge| -> i128 {
            i128::from(bound.den()) * i128::from(e.tokens)
                - i128::from(bound.num()) * i128::from(e.delay)
        };
        // Bellman-Ford with all distances 0 (virtual source to all).
        let mut dist = vec![0i128; n];
        let mut pred: Vec<Option<usize>> = vec![None; n]; // predecessor edge index
        let mut updated_node = None;
        for round in 0..=n {
            updated_node = None;
            for (ei, e) in self.edges.iter().enumerate() {
                let cand = dist[e.from.index()] + w(e);
                if cand < dist[e.to.index()] {
                    dist[e.to.index()] = cand;
                    pred[e.to.index()] = Some(ei);
                    updated_node = Some(e.to.index());
                }
            }
            updated_node?;
            let _ = round;
        }
        // A relaxation happened in round n: walk back n steps to land on
        // the cycle, then collect it.
        let mut v = updated_node.expect("relaxation recorded");
        for _ in 0..n {
            let ei = pred[v].expect("on a negative path");
            v = self.edges[ei].from.index();
        }
        let start = v;
        let mut cycle = Vec::new();
        loop {
            let ei = pred[v].expect("on the cycle");
            cycle.push(self.edges[ei]);
            v = self.edges[ei].from.index();
            if v == start {
                break;
            }
        }
        cycle.reverse();
        Some(cycle)
    }
}

/// Steady-state valid-token rate of a periodic [`Pattern`] used as a
/// *void* pattern (fraction of cycles that carry data), or `None` for
/// aperiodic patterns.
#[must_use]
pub fn pattern_data_rate(void_pattern: &Pattern) -> Option<Ratio> {
    let period = void_pattern.period()?;
    let voids = (0..period).filter(|&c| void_pattern.at(c)).count() as u64;
    Some(Ratio::new(period - voids, period))
}

/// Steady-state acceptance rate of a periodic stop [`Pattern`] (fraction
/// of cycles the consumer accepts), or `None` for aperiodic patterns.
#[must_use]
pub fn pattern_accept_rate(stop_pattern: &Pattern) -> Option<Ratio> {
    pattern_data_rate(stop_pattern)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_graph::generate;

    fn min_ratio(netlist: &Netlist) -> Ratio {
        MarkedGraph::new(netlist).min_cycle_ratio()
    }

    #[test]
    fn fig1_model_gives_four_fifths() {
        let f = generate::fig1();
        assert_eq!(min_ratio(&f.netlist), Ratio::new(4, 5));
    }

    #[test]
    fn fork_join_sweep_matches_formula() {
        // (m - i)/m with m = relays-in-loop + shells on the long branch
        // (A and B), i = imbalance.
        for (r1, r2, s) in [
            (1usize, 1usize, 1usize),
            (2, 1, 1),
            (1, 2, 1),
            (2, 2, 1),
            (2, 1, 2),
        ] {
            let f = generate::fork_join(r1, r2, s);
            let m = (r1 + r2 + s + 2) as u64;
            let i = (r1 + r2 - s) as u64;
            assert_eq!(
                min_ratio(&f.netlist),
                Ratio::new(m - i, m),
                "fork_join({r1},{r2},{s})"
            );
        }
    }

    #[test]
    fn ring_model_gives_s_over_s_plus_r() {
        for (s, r) in [(1usize, 1usize), (2, 1), (2, 2), (3, 1), (1, 4)] {
            let ring = generate::ring(s, r, RelayKind::Full);
            assert_eq!(
                min_ratio(&ring.netlist),
                Ratio::new(s as u64, (s + r) as u64),
                "ring({s},{r})"
            );
        }
    }

    #[test]
    fn trees_and_chains_are_unconstrained() {
        assert_eq!(
            min_ratio(&generate::tree(2, 2, 1).netlist),
            Ratio::new(1, 1)
        );
        assert_eq!(
            min_ratio(&generate::chain(3, 2, RelayKind::Full).netlist),
            Ratio::new(1, 1)
        );
    }

    #[test]
    fn balanced_fork_join_reaches_one() {
        let f = generate::fork_join(1, 1, 2);
        assert_eq!(min_ratio(&f.netlist), Ratio::new(1, 1));
    }

    #[test]
    fn half_relay_ring_model() {
        // Half stations add no forward delay: a ring of 2 shells and 1
        // half relay has cycle tokens 2, delay 2 -> capped at 1.
        let ring = generate::ring(2, 1, RelayKind::Half);
        assert_eq!(min_ratio(&ring.netlist), Ratio::new(1, 1));
    }

    #[test]
    fn composed_is_bound_by_slowest_subtopology() {
        // Ring 1 shell + 2 relays -> 1/3; front-end fork imbalance mild.
        let c = generate::composed(2, 1, 1, 2);
        let t = min_ratio(&c.netlist);
        assert_eq!(t, Ratio::new(1, 3));
    }

    #[test]
    fn model_matches_simulation_on_corpus() {
        for seed in 0..40u64 {
            let (fam, netlist) = generate::random_family(seed);
            if netlist.validate().is_err() {
                continue;
            }
            let predicted = min_ratio(&netlist);
            let measured = lip_sim::measure(&netlist).unwrap();
            if measured.periodicity.is_none() {
                continue;
            }
            assert_eq!(
                measured.system_throughput(),
                Some(predicted),
                "seed {seed} family {fam:?}"
            );
        }
    }

    #[test]
    fn binding_cycle_names_the_bottleneck() {
        // Fig. 1: the binding cycle is the implicit fork-join loop at
        // ratio 4/5, traversing A and the long branch.
        let f = generate::fig1();
        let g = MarkedGraph::new(&f.netlist);
        let (cycle, ratio) = g.binding_cycle().expect("constrained");
        assert_eq!(ratio, Ratio::new(4, 5));
        let nodes: std::collections::HashSet<_> = cycle.iter().map(|e| e.from).collect();
        assert!(nodes.contains(&f.fork), "fork on the loop");
        assert!(nodes.contains(&f.mid), "mid shell on the loop");
        // The cycle is closed.
        for w in cycle.windows(2) {
            assert_eq!(w[0].to, w[1].from);
        }
        assert_eq!(cycle.last().unwrap().to, cycle[0].from);

        // Rings: the loop itself binds.
        let r = generate::ring(2, 3, RelayKind::Full);
        let (_, ratio) = MarkedGraph::new(&r.netlist)
            .binding_cycle()
            .expect("constrained");
        assert_eq!(ratio, Ratio::new(2, 5));

        // Trees: unconstrained.
        assert!(MarkedGraph::new(&generate::tree(2, 2, 1).netlist)
            .binding_cycle()
            .is_none());
    }

    #[test]
    fn pattern_rates() {
        assert_eq!(pattern_data_rate(&Pattern::Never), Some(Ratio::new(1, 1)));
        assert_eq!(pattern_data_rate(&Pattern::Always), Some(Ratio::new(0, 1)));
        assert_eq!(
            pattern_data_rate(&Pattern::EveryNth {
                period: 5,
                phase: 0
            }),
            Some(Ratio::new(4, 5))
        );
        assert_eq!(
            pattern_data_rate(&Pattern::Random {
                num: 1,
                denom: 2,
                seed: 0
            }),
            None
        );
        assert_eq!(
            pattern_accept_rate(&Pattern::Cyclic(vec![true, false])),
            Some(Ratio::new(1, 2))
        );
    }

    use lip_core::RelayKind;
}
