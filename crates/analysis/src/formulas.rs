//! The paper's closed-form throughput expressions, plus a general
//! predictor combining them with the marked-graph model.

use lip_graph::topology::{classify, TopologyClass};
use lip_graph::{Netlist, NodeKind};
use lip_sim::Ratio;

use crate::model::{pattern_accept_rate, pattern_data_rate, MarkedGraph};

/// Tree claim: "The throughput of each node ... is 1."
#[must_use]
pub fn tree_throughput() -> Ratio {
    Ratio::new(1, 1)
}

/// Feedback-loop formula: "A maximum of `S` valid data can be present at
/// a time, out of `S + R` positions. This justifies the number `S/(S+R)`
/// for the maximum throughput."
///
/// # Panics
///
/// Panics if `shells == 0` (a loop of relay stations only is not a legal
/// LID).
#[must_use]
pub fn loop_throughput(shells: usize, relays: usize) -> Ratio {
    assert!(shells > 0, "a loop must contain at least one shell");
    Ratio::new(shells as u64, (shells + relays) as u64)
}

/// Reconvergent feed-forward formula: `T = (m − i)/m`, where `i` is the
/// relay-station imbalance between the converging branches and `m` is
/// "the total number of relay stations in the loop, plus the number of
/// shells on the path with the highest number of relay stations"
/// (excluding the join shell, whose output register is outside the
/// implicit loop).
///
/// For the paper's Fig. 1 instance (`loop_relays = 3`,
/// `shells_on_long_branch = 2` — blocks A and B — and `imbalance = 1`):
/// `m = 5` and `T = 4/5`.
#[must_use]
pub fn reconvergent_throughput(
    loop_relays: usize,
    shells_on_long_branch: usize,
    imbalance: usize,
) -> Ratio {
    let m = (loop_relays + shells_on_long_branch) as u64;
    if m == 0 {
        return Ratio::new(1, 1);
    }
    let i = (imbalance as u64).min(m);
    Ratio::new(m - i, m)
}

/// Predicted steady-state system throughput of an arbitrary legal
/// netlist: the minimum of
///
/// * the marked-graph minimum cycle ratio (which subsumes the tree,
///   reconvergent and loop formulas), and
/// * every source's data rate and sink's acceptance rate (for periodic
///   environment patterns).
///
/// Returns `None` when some environment pattern is aperiodic.
#[must_use]
pub fn predict_throughput(netlist: &Netlist) -> Option<Ratio> {
    let mut best = MarkedGraph::new(netlist).min_cycle_ratio();
    let less = |a: Ratio, b: Ratio| a.num() * b.den() < b.num() * a.den();
    for (_, node) in netlist.nodes() {
        let rate = match node.kind() {
            NodeKind::Source { void_pattern } => pattern_data_rate(void_pattern)?,
            NodeKind::Sink { stop_pattern } => pattern_accept_rate(stop_pattern)?,
            _ => continue,
        };
        if less(rate, best) {
            best = rate;
        }
    }
    Some(best)
}

/// Which closed form applies to `netlist`, with its prediction — the
/// paper's taxonomy made executable. The general
/// [`predict_throughput`] agrees with the closed form on each family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClosedForm {
    /// Tree: `T = 1`.
    Tree,
    /// Reconvergent feed-forward: `T = (m − i)/m`.
    Reconvergent {
        /// The `m` of the formula.
        m: u64,
        /// The imbalance `i`.
        i: u64,
    },
    /// Feedback: `T = S/(S+R)` for the slowest loop.
    Feedback {
        /// Shells on the binding loop.
        s: u64,
        /// Relay stations on the binding loop.
        r: u64,
    },
}

impl ClosedForm {
    /// The throughput this form predicts.
    #[must_use]
    pub fn throughput(self) -> Ratio {
        match self {
            ClosedForm::Tree => Ratio::new(1, 1),
            ClosedForm::Reconvergent { m, i } => Ratio::new(m - i.min(m), m.max(1)),
            ClosedForm::Feedback { s, r } => Ratio::new(s, s + r),
        }
    }
}

/// Classify `netlist` and instantiate the applicable closed form, using
/// the slowest simple loop for feedback systems. Reconvergent systems
/// fall back to the marked-graph ratio expressed as `(m − i)/m` in
/// lowest terms.
#[must_use]
pub fn closed_form(netlist: &Netlist) -> ClosedForm {
    match classify(netlist) {
        TopologyClass::Tree => ClosedForm::Tree,
        TopologyClass::ReconvergentFeedForward => {
            let t = MarkedGraph::new(netlist).min_cycle_ratio();
            ClosedForm::Reconvergent {
                m: t.den(),
                i: t.den() - t.num(),
            }
        }
        TopologyClass::Feedback => {
            let profiles = lip_graph::topology::cycle_profiles(netlist, 256);
            let slowest = profiles
                .iter()
                .min_by(|a, b| {
                    // Compare S/(S+R) as fractions.
                    let (sa, ra) = (a.shells as u64, a.relays() as u64);
                    let (sb, rb) = (b.shells as u64, b.relays() as u64);
                    (sa * (sb + rb)).cmp(&(sb * (sa + ra)))
                })
                .expect("feedback topology has at least one cycle");
            ClosedForm::Feedback {
                s: slowest.shells as u64,
                r: slowest.relays() as u64,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_core::{Pattern, RelayKind};
    use lip_graph::generate;

    #[test]
    fn closed_form_values() {
        assert_eq!(tree_throughput(), Ratio::new(1, 1));
        assert_eq!(loop_throughput(2, 1), Ratio::new(2, 3));
        assert_eq!(loop_throughput(3, 0), Ratio::new(1, 1));
        // Fig. 1: 3 loop relays + shells A, B => m = 5; i = 1 => 4/5.
        assert_eq!(reconvergent_throughput(3, 2, 1), Ratio::new(4, 5));
        assert_eq!(reconvergent_throughput(0, 0, 0), Ratio::new(1, 1));
    }

    #[test]
    #[should_panic(expected = "at least one shell")]
    fn loop_throughput_rejects_shellless_loop() {
        let _ = loop_throughput(0, 3);
    }

    #[test]
    fn predictor_handles_environment_rates() {
        // A plain wire limited by a sink that stops every 4th cycle.
        let mut n = Netlist::new();
        let src = n.add_source("in");
        let sink = n.add_sink_with_pattern(
            "out",
            Pattern::EveryNth {
                period: 4,
                phase: 0,
            },
        );
        n.connect(src, 0, sink, 0).unwrap();
        assert_eq!(predict_throughput(&n), Some(Ratio::new(3, 4)));
    }

    #[test]
    fn predictor_handles_void_sources() {
        let mut n = Netlist::new();
        let src = n.add_source_with_pattern(
            "in",
            Pattern::EveryNth {
                period: 3,
                phase: 1,
            },
        );
        let sink = n.add_sink("out");
        n.connect(src, 0, sink, 0).unwrap();
        assert_eq!(predict_throughput(&n), Some(Ratio::new(2, 3)));
    }

    #[test]
    fn predictor_returns_none_for_aperiodic() {
        let mut n = Netlist::new();
        let src = n.add_source_with_pattern(
            "in",
            Pattern::Random {
                num: 1,
                denom: 2,
                seed: 3,
            },
        );
        let sink = n.add_sink("out");
        n.connect(src, 0, sink, 0).unwrap();
        assert_eq!(predict_throughput(&n), None);
    }

    #[test]
    fn closed_forms_match_families() {
        assert_eq!(
            closed_form(&generate::tree(2, 2, 1).netlist),
            ClosedForm::Tree
        );

        let f = generate::fig1();
        let cf = closed_form(&f.netlist);
        assert_eq!(cf, ClosedForm::Reconvergent { m: 5, i: 1 });
        assert_eq!(cf.throughput(), Ratio::new(4, 5));

        let ring = generate::ring(2, 3, RelayKind::Full);
        let cf = closed_form(&ring.netlist);
        assert_eq!(cf, ClosedForm::Feedback { s: 2, r: 3 });
        assert_eq!(cf.throughput(), Ratio::new(2, 5));
    }

    #[test]
    fn closed_form_agrees_with_general_predictor() {
        for (r1, r2, s) in [(1usize, 1usize, 1usize), (2, 1, 1), (2, 2, 1)] {
            let f = generate::fork_join(r1, r2, s);
            assert_eq!(
                closed_form(&f.netlist).throughput(),
                predict_throughput(&f.netlist).unwrap(),
            );
        }
        for (s, r) in [(1usize, 2usize), (2, 1), (3, 2)] {
            let ring = generate::ring(s, r, RelayKind::Full);
            assert_eq!(
                closed_form(&ring.netlist).throughput(),
                predict_throughput(&ring.netlist).unwrap(),
            );
        }
    }

    use lip_graph::Netlist;
}
