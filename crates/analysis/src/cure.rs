//! Structural repair passes: minimum-memory insertion and the paper's
//! deadlock cure.
//!
//! * [`enforce_min_memory`] realises the paper's central implementation
//!   rule — *"we need to add at least one half or one full relay station
//!   between two shells"* — by inserting a half station on every direct
//!   shell-to-shell channel.
//! * [`cure_deadlocks`] implements the remedy for half stations in
//!   loops: simulate the skeleton past the transient ("either the
//!   deadlock will show, or will be forever avoided"); while any shell
//!   starves, substitute one half relay station inside a loop with a
//!   full one — *"the cases that inject deadlocks can be cured by low
//!   intrusive changes (adding/substituting few relay stations)"*.

use lip_core::RelayKind;
use lip_graph::topology::sccs;
use lip_graph::{Netlist, NetlistError, NodeId, NodeKind};
use lip_sim::measure::check_liveness;
use lip_sim::LivenessReport;

/// Insert a half relay station on every direct shell-to-shell channel.
/// Returns the inserted node ids.
pub fn enforce_min_memory(netlist: &mut Netlist) -> Vec<NodeId> {
    let offending = netlist.shell_to_shell_channels();
    offending
        .into_iter()
        .map(|ch| netlist.insert_relay_on_channel(ch, RelayKind::Half))
        .collect()
}

/// Half relay stations that sit inside a directed cycle — the paper's
/// deadlock suspects ("potential deadlocks iff half relay stations are
/// present in loops").
#[must_use]
pub fn half_relays_in_loops(netlist: &Netlist) -> Vec<NodeId> {
    let mut out = Vec::new();
    for comp in sccs(netlist) {
        let cyclic = comp.len() > 1
            || comp
                .first()
                .is_some_and(|id| netlist.successors(*id).contains(id));
        if !cyclic {
            continue;
        }
        for id in comp {
            if matches!(
                netlist.node(id).kind(),
                NodeKind::Relay {
                    kind: RelayKind::Half
                }
            ) {
                out.push(id);
            }
        }
    }
    out
}

/// Outcome of [`cure_deadlocks`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CureReport {
    /// Half stations substituted by full ones, in order.
    pub substituted: Vec<NodeId>,
    /// The final liveness verdict.
    pub liveness: LivenessReport,
}

impl CureReport {
    /// `true` when the cured system keeps every shell firing.
    #[must_use]
    pub fn is_live(&self) -> bool {
        self.liveness.is_live()
    }
}

/// Detect starvation/deadlock by skeleton-style simulation past the
/// transient, and cure it by substituting half relay stations in loops
/// with full ones, one at a time, re-checking after each substitution.
///
/// # Errors
///
/// Propagates [`NetlistError`] from elaboration.
pub fn cure_deadlocks(
    netlist: &mut Netlist,
    max_transient: u64,
    fallback: u64,
) -> Result<CureReport, NetlistError> {
    let mut substituted = Vec::new();
    loop {
        let liveness = check_liveness(netlist, max_transient, fallback)?;
        if liveness.is_live() {
            return Ok(CureReport {
                substituted,
                liveness,
            });
        }
        let suspects = half_relays_in_loops(netlist);
        match suspects.first() {
            Some(&id) => {
                netlist.set_relay_kind(id, RelayKind::Full);
                substituted.push(id);
            }
            None => {
                return Ok(CureReport {
                    substituted,
                    liveness,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_core::pearl::IdentityPearl;
    use lip_core::Pattern;
    use lip_graph::generate;

    #[test]
    fn min_memory_inserts_on_shell_to_shell() {
        let mut n = Netlist::new();
        let src = n.add_source("in");
        let a = n.add_shell("A", IdentityPearl::new());
        let b = n.add_shell("B", IdentityPearl::new());
        let out = n.add_sink("out");
        n.chain(&[src, a, b, out]).unwrap();
        assert_eq!(n.shell_to_shell_channels().len(), 1);
        let inserted = enforce_min_memory(&mut n);
        assert_eq!(inserted.len(), 1);
        assert!(n.shell_to_shell_channels().is_empty());
        n.validate().unwrap();
        assert_eq!(n.census().half_relays, 1);
    }

    #[test]
    fn min_memory_is_idempotent() {
        let mut f = generate::fig1();
        assert!(enforce_min_memory(&mut f.netlist).is_empty());
    }

    #[test]
    fn half_relays_in_loops_are_found() {
        let r = generate::ring(2, 2, RelayKind::Half);
        assert_eq!(half_relays_in_loops(&r.netlist).len(), 2);
        let r = generate::ring(2, 2, RelayKind::Full);
        assert!(half_relays_in_loops(&r.netlist).is_empty());
        // Half stations outside loops are not suspects.
        let c = generate::chain(2, 1, RelayKind::Half);
        assert!(half_relays_in_loops(&c.netlist).is_empty());
    }

    #[test]
    fn live_systems_are_untouched() {
        let mut f = generate::fig1();
        let report = cure_deadlocks(&mut f.netlist, 1000, 1000).unwrap();
        assert!(report.is_live());
        assert!(report.substituted.is_empty());
    }

    #[test]
    fn starved_half_ring_gets_substitutions() {
        // A ring with half stations disturbed by a sink that stops half
        // the time: if any shell starves, the cure must make it live (or
        // conclude it is already live) while substituting at most all
        // suspect stations.
        let r = generate::ring_with_entry(
            2,
            2,
            RelayKind::Half,
            Pattern::Never,
            Pattern::Cyclic(vec![true, false]),
        );
        let mut netlist = r.netlist;
        let suspects_before = half_relays_in_loops(&netlist).len();
        let report = cure_deadlocks(&mut netlist, 2000, 2000).unwrap();
        assert!(report.substituted.len() <= suspects_before);
        assert!(report.is_live() || half_relays_in_loops(&netlist).is_empty());
        netlist.validate().unwrap();
    }
}
