//! Path equalization: the paper's recipe for restoring full throughput
//! in feed-forward systems.
//!
//! *"To get the maximum T from a feedforward arrangement, it is necessary
//! to insert enough spare relay stations to make all converging paths of
//! the same length (path equalization)."*
//!
//! [`equalize`] inserts spare full relay stations on the faster inputs of
//! every join until all converging paths have equal forward latency. The
//! tests (and experiment `EXP-T6`) confirm the equalized system reaches
//! `T = 1`.

use std::collections::VecDeque;

use lip_core::RelayKind;
use lip_graph::topology::is_acyclic;
use lip_graph::{ChannelId, Netlist, NetlistError, NodeId};

/// Result of [`equalize`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EqualizeReport {
    /// Relay stations inserted, as `(channel, count)` per originally
    /// unbalanced join input.
    pub insertions: Vec<(ChannelId, usize)>,
}

impl EqualizeReport {
    /// Total spare relay stations inserted.
    #[must_use]
    pub fn total_inserted(&self) -> usize {
        self.insertions.iter().map(|(_, c)| c).sum()
    }
}

/// Insert spare full relay stations so that every join's converging
/// paths have equal forward latency. Mutates `netlist` in place.
///
/// # Errors
///
/// Returns [`NetlistError::Empty`] when the netlist is cyclic — the
/// paper's equalization applies to feed-forward systems; loops adapt by
/// themselves ("the protocol itself will adapt to such a speed without
/// any need for path equalization").
pub fn equalize(netlist: &mut Netlist) -> Result<EqualizeReport, NetlistError> {
    if !is_acyclic(netlist) {
        return Err(NetlistError::Empty {
            what: "acyclic topology (equalization is feed-forward only)",
        });
    }
    let mut report = EqualizeReport::default();
    // Fixpoint: repeatedly find the first unbalanced join and fix it.
    // Insertions change downstream debts, so recompute each round.
    loop {
        let times = relay_debt(netlist);
        let mut fixed_any = false;
        for (id, node) in netlist
            .nodes()
            .map(|(i, n)| (i, n.kind().num_inputs()))
            .collect::<Vec<_>>()
        {
            if node < 2 {
                continue;
            }
            let ins: Vec<(ChannelId, u64)> = (0..node)
                .map(|p| {
                    let ch = netlist.in_channel(id, p).expect("validated");
                    let producer = netlist.channel(ch).producer.node;
                    (ch, times[producer.index()])
                })
                .collect();
            let max = ins.iter().map(|(_, t)| *t).max().expect("join has inputs");
            for (ch, t) in ins {
                let deficit = usize::try_from(max - t).expect("latency fits usize");
                if deficit > 0 {
                    let mut target = ch;
                    for _ in 0..deficit {
                        let rs = netlist.insert_relay_on_channel(target, RelayKind::Full);
                        // Chain further insertions after the new relay.
                        target = netlist.out_channel(rs, 0).expect("just connected");
                    }
                    report.insertions.push((ch, deficit));
                    fixed_any = true;
                }
            }
            if fixed_any {
                break; // recompute times before the next join
            }
        }
        if !fixed_any {
            return Ok(report);
        }
    }
}

/// *Void debt* at each node's output: the maximum number of full relay
/// stations on any source path to it. Shells are neutral (they add a
/// pipeline stage **and** an initial valid token), half stations are
/// neutral (no stage, no token); only full stations (a stage with no
/// token) unbalance converging paths. The paper's "path length" for
/// equalization is exactly this relay-station count.
fn relay_debt(netlist: &Netlist) -> Vec<u64> {
    let n = netlist.node_count();
    let ids: Vec<NodeId> = netlist.nodes().map(|(id, _)| id).collect();
    let mut indegree: Vec<usize> = ids
        .iter()
        .map(|id| netlist.predecessors(*id).len())
        .collect();
    let mut debt = vec![0u64; n];
    let mut queue: VecDeque<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    while let Some(i) = queue.pop_front() {
        let id = ids[i];
        let own = u64::from(matches!(
            netlist.node(id).kind(),
            lip_graph::NodeKind::Relay {
                kind: RelayKind::Full
            }
        ));
        let out = debt[i] + own;
        debt[i] = out;
        for s in netlist.successors(id) {
            debt[s.index()] = debt[s.index()].max(out);
            indegree[s.index()] -= 1;
            if indegree[s.index()] == 0 {
                queue.push_back(s.index());
            }
        }
    }
    debt
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_graph::generate;
    use lip_sim::{measure, Ratio};

    #[test]
    fn equalized_fig1_reaches_unit_throughput() {
        let mut f = generate::fig1();
        let before = measure(&f.netlist).unwrap().system_throughput().unwrap();
        assert_eq!(before, Ratio::new(4, 5));
        let report = equalize(&mut f.netlist).unwrap();
        assert_eq!(report.total_inserted(), 1); // short branch gets 1 spare
        f.netlist.validate().unwrap();
        let after = measure(&f.netlist).unwrap().system_throughput().unwrap();
        assert_eq!(after, Ratio::new(1, 1));
    }

    #[test]
    fn equalize_sweep_restores_unit_throughput() {
        for (r1, r2, s) in [(2usize, 1usize, 1usize), (2, 2, 0), (0, 3, 1), (3, 0, 2)] {
            let mut f = generate::fork_join(r1, r2, s);
            equalize(&mut f.netlist).unwrap();
            f.netlist.validate().unwrap();
            let t = measure(&f.netlist).unwrap().system_throughput().unwrap();
            assert_eq!(t, Ratio::new(1, 1), "fork_join({r1},{r2},{s})");
        }
    }

    #[test]
    fn balanced_systems_need_no_insertion() {
        let mut f = generate::fork_join(1, 1, 2); // already balanced
        let report = equalize(&mut f.netlist).unwrap();
        assert_eq!(report.total_inserted(), 0);
        let mut t = generate::tree(2, 2, 1);
        assert_eq!(equalize(&mut t.netlist).unwrap().total_inserted(), 0);
    }

    #[test]
    fn cyclic_netlists_are_rejected() {
        let mut r = generate::ring(2, 1, lip_core::RelayKind::Full);
        assert!(equalize(&mut r.netlist).is_err());
    }
}
