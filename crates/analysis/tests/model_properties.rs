//! Property tests: the marked-graph model is an exact oracle for
//! simulated steady-state throughput across randomly parameterised
//! topology families — far beyond the few configurations the paper
//! tabulates.

use lip_analysis::{equalize, predict_throughput, transient_bound};
use lip_core::RelayKind;
use lip_graph::generate;
use lip_sim::measure::{find_periodicity, measure};
use lip_sim::{Ratio, System};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Model == simulation on arbitrary fork-joins.
    #[test]
    fn model_matches_sim_on_fork_joins(r1 in 0usize..4, r2 in 0usize..4, s in 0usize..4) {
        let f = generate::fork_join(r1, r2, s);
        let predicted = predict_throughput(&f.netlist).expect("periodic");
        let measured = measure(&f.netlist).unwrap().system_throughput().unwrap();
        prop_assert_eq!(predicted, measured, "fork_join({},{},{})", r1, r2, s);
    }

    /// Model == simulation on arbitrary rings of either kind.
    #[test]
    fn model_matches_sim_on_rings(s in 1usize..6, r in 0usize..6, half in any::<bool>()) {
        let kind = if half { RelayKind::Half } else { RelayKind::Full };
        let ring = generate::ring(s, r, kind);
        if ring.netlist.validate().is_err() {
            return Ok(());
        }
        let predicted = predict_throughput(&ring.netlist).expect("periodic");
        let measured = measure(&ring.netlist).unwrap().system_throughput().unwrap();
        prop_assert_eq!(predicted, measured, "{} ring({},{})", kind, s, r);
    }

    /// Model == simulation on buffered rings (relay-free loops).
    #[test]
    fn model_matches_sim_on_buffered_rings(s in 1usize..5, r in 0usize..3) {
        let ring = generate::buffered_ring(s, r);
        let predicted = predict_throughput(&ring.netlist).expect("periodic");
        let measured = measure(&ring.netlist).unwrap().system_throughput().unwrap();
        prop_assert_eq!(predicted, measured, "buffered_ring({},{})", s, r);
    }

    /// Model == simulation on coupled compositions, and equals the
    /// min of the sub-topology forms.
    #[test]
    fn model_matches_sim_on_coupled_compositions(
        r1 in 1usize..3, r2 in 1usize..3, s in 1usize..3,
        ring_s in 1usize..4, ring_r in 1usize..4,
    ) {
        let c = generate::composed_coupled(r1, r2, s, ring_s, ring_r);
        let predicted = predict_throughput(&c.netlist).expect("periodic");
        let measured = measure(&c.netlist).unwrap().system_throughput().unwrap();
        prop_assert_eq!(predicted, measured);
    }

    /// Equalization always yields exactly T = 1 on the fork-join family.
    #[test]
    fn equalization_always_reaches_one(r1 in 0usize..4, r2 in 0usize..4, s in 0usize..4) {
        let mut f = generate::fork_join(r1, r2, s);
        equalize(&mut f.netlist).unwrap();
        f.netlist.validate().unwrap();
        let t = measure(&f.netlist).unwrap().system_throughput().unwrap();
        prop_assert_eq!(t, Ratio::new(1, 1));
    }

    /// The transient bound holds on arbitrary ring + environment
    /// disturbances.
    #[test]
    fn transient_bound_holds_on_disturbed_rings(
        s in 1usize..4, r in 1usize..4,
        void_period in 2u32..5, stop_period in 2u32..5,
    ) {
        use lip_core::Pattern;
        let ring = generate::ring_with_entry(
            s, r, RelayKind::Full,
            Pattern::EveryNth { period: void_period, phase: 0 },
            Pattern::EveryNth { period: stop_period, phase: 1 },
        );
        let bound = transient_bound(&ring.netlist);
        let mut sys = System::new(&ring.netlist).unwrap();
        let p = find_periodicity(&mut sys, 200_000).expect("periodic environment");
        prop_assert!(p.transient <= bound, "transient {} > bound {}", p.transient, bound);
    }

    /// Throughput is monotone in loop relay count: adding a full relay
    /// station to a ring never speeds it up.
    #[test]
    fn ring_throughput_is_antitone_in_relays(s in 1usize..5, r in 1usize..5) {
        let t1 = predict_throughput(&generate::ring(s, r, RelayKind::Full).netlist).unwrap();
        let t2 = predict_throughput(&generate::ring(s, r + 1, RelayKind::Full).netlist).unwrap();
        prop_assert!(t2.to_f64() <= t1.to_f64() + 1e-12);
    }

    /// Increasing fork-join imbalance never increases throughput.
    #[test]
    fn fork_join_throughput_is_antitone_in_imbalance(base in 1usize..3, extra in 0usize..3) {
        let t1 = predict_throughput(&generate::fork_join(base, 1, 1).netlist).unwrap();
        let t2 = predict_throughput(&generate::fork_join(base + extra, 1, 1).netlist).unwrap();
        prop_assert!(t2.to_f64() <= t1.to_f64() + 1e-12);
    }
}
