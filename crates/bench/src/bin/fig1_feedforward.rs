//! EXP-F1 — Fig. 1: feed-forward (reconvergent) topology evolution.
//!
//! Paper: "After the initial transient, the situation becomes periodic,
//! and the output utters an invalid datum every 5 cycles. ... In the
//! present case, n = 5, while i = 1. The number of valid data every 4
//! periods is 4 and the throughput is 4/5."

use lip_bench::{banner, mark, table};
use lip_graph::generate;
use lip_sim::{measure, Evolution, Ratio};

fn main() {
    banner(
        "EXP-F1",
        "Fig. 1 — feed-forward topology evolution",
        "periodic after transient; one void at the output every n = 5 cycles; T = 4/5",
    );

    let fig1 = generate::fig1();
    println!("topology: {}\n", fig1.netlist);
    let ev = Evolution::record(&fig1.netlist, &[fig1.fork, fig1.mid, fig1.join], 20)
        .expect("fig1 elaborates");
    println!("{ev}");

    let m = measure(&fig1.netlist).expect("fig1 measures");
    let p = m.periodicity.expect("fig1 is periodic");
    let t = m.system_throughput().expect("one sink");

    let rows = vec![
        vec![
            "period n".into(),
            "5".into(),
            p.period.to_string(),
            mark(p.period == 5).into(),
        ],
        vec![
            "voids per period".into(),
            "1 (i = 1)".into(),
            format!("{}", p.period - t.num() * p.period / t.den()),
            mark(p.period - t.num() * p.period / t.den() == 1).into(),
        ],
        vec![
            "throughput T".into(),
            "4/5".into(),
            t.to_string(),
            mark(t == Ratio::new(4, 5)).into(),
        ],
        vec![
            "transient".into(),
            "system dependent".into(),
            format!("{} cycles", p.transient),
            "ok".into(),
        ],
    ];
    println!(
        "{}",
        table(&["figure quantity", "paper", "measured", "check"], &rows)
    );
}
