//! EXP-F1 — Fig. 1: feed-forward (reconvergent) topology evolution.
//!
//! Paper: "After the initial transient, the situation becomes periodic,
//! and the output utters an invalid datum every 5 cycles. ... In the
//! present case, n = 5, while i = 1. The number of valid data every 4
//! periods is 4 and the throughput is 4/5."

use lip_bench::{banner, emit_report, mark, table, Report};
use lip_graph::{generate, topology};
use lip_obs::{MetricsRegistry, Probe, Tee, TransientDetector};
use lip_sim::{measure, Evolution, Ratio, SkeletonSystem};

/// Feeds the sink's per-cycle informative/void stream into a
/// [`TransientDetector`]: a [`Probe::consume`] marks the cycle
/// informative, a [`Probe::void_in`] leaves it void.
struct SinkTransient {
    det: TransientDetector,
    informative: bool,
}

impl Probe for SinkTransient {
    fn event(&mut self, _ev: lip_obs::Event) {}

    fn consume(&mut self, _cycle: u64, _ch: u32, _lane: u16) {
        self.informative = true;
    }

    fn end_cycle(&mut self, _cycle: u64) {
        self.det.push(self.informative);
        self.informative = false;
    }
}

fn main() {
    banner(
        "EXP-F1",
        "Fig. 1 — feed-forward topology evolution",
        "periodic after transient; one void at the output every n = 5 cycles; T = 4/5",
    );

    let fig1 = generate::fig1();
    println!("topology: {}\n", fig1.netlist);
    let ev = Evolution::record(&fig1.netlist, &[fig1.fork, fig1.mid, fig1.join], 20)
        .expect("fig1 elaborates");
    println!("{ev}");

    let m = measure(&fig1.netlist).expect("fig1 measures");
    let p = m.periodicity.expect("fig1 is periodic");
    let t = m.system_throughput().expect("one sink");

    let rows = vec![
        vec![
            "period n".into(),
            "5".into(),
            p.period.to_string(),
            mark(p.period == 5).into(),
        ],
        vec![
            "voids per period".into(),
            "1 (i = 1)".into(),
            format!("{}", p.period - t.num() * p.period / t.den()),
            mark(p.period - t.num() * p.period / t.den() == 1).into(),
        ],
        vec![
            "throughput T".into(),
            "4/5".into(),
            t.to_string(),
            mark(t == Ratio::new(4, 5)).into(),
        ],
        vec![
            "transient".into(),
            "system dependent".into(),
            format!("{} cycles", p.transient),
            "ok".into(),
        ],
    ];
    println!(
        "{}",
        table(&["figure quantity", "paper", "measured", "check"], &rows)
    );

    // Probed re-run: count the same numbers from the observability
    // layer instead of the measurement machinery, as a cross-check.
    const CYCLES: u64 = 100;
    let mut sys = SkeletonSystem::new(&fig1.netlist).expect("fig1 elaborates");
    let prog = sys.program().clone();
    let mut probe = Tee(
        MetricsRegistry::new(prog.topology()),
        SinkTransient {
            det: TransientDetector::new(4, 5),
            informative: false,
        },
    );
    sys.run_probed(CYCLES, &mut probe);
    let Tee(metrics, transient) = probe;

    let sink_ch = prog.sink_input_channel(0) as usize;
    let (consumed, cycles) = metrics.sink_throughput(sink_ch).expect("sink channel");
    let voids = metrics.void_ins(sink_ch);
    let settle = transient.det.transient().expect("fig1 settles");
    let (st_num, st_den) = transient.det.steady_measured().expect("fig1 settles");
    let bound = topology::longest_latency(&fig1.netlist).expect("fig1 is acyclic");
    println!("probed over {cycles} cycles: {consumed} informative, {voids} voids at the sink");
    println!("steady state: {st_num}/{st_den} informative — one void per 5 cycles");
    println!("observed transient: {settle} cycles (relay-path bound: {bound})\n");
    assert_eq!(consumed + voids, cycles, "sink sees a token every cycle");
    assert_eq!(
        st_num * 5,
        st_den * 4,
        "steady-state throughput must be 4/5"
    );
    assert_eq!((st_den - st_num) * 5, st_den, "one void every 5 cycles");
    assert!(settle <= bound, "transient exceeds longest relay path");

    let mut report = Report::new("fig1_feedforward");
    report
        .push_int("period", p.period)
        .push_int("transient", p.transient)
        .push_ratio("throughput", t.num(), t.den())
        .push_int("probed_cycles", cycles)
        .push_int("probed_consumed", consumed)
        .push_int("probed_voids", voids)
        .push_ratio("probed_steady_throughput", st_num, st_den)
        .push_int("probed_transient", settle)
        .push_int("transient_bound", bound)
        .push_int("total_fires", metrics.total_fires())
        .push_bool(
            "ok",
            p.period == 5 && t == Ratio::new(4, 5) && st_num * 5 == st_den * 4,
        );
    emit_report(&report);
}
