//! EXP-P1 — parallel sweep executor + batched periodicity early-exit.
//!
//! Two independent throughput multipliers on top of the batched engine:
//!
//! 1. **Fan-out**: a corpus of independent measurements spread across
//!    threads by the deterministic work-stealing executor in `lip-par`.
//!    The sweep's *results* are byte-identical for every worker count
//!    (that is `par_map`'s contract, asserted here); only the wall
//!    clock changes. On a ≥ 4-core host the multi-thread sweep must be
//!    ≥ 3× faster than the same sweep pinned to one worker.
//!
//! 2. **Early exit**: [`measure_batch_periodic`] retires each of the 64
//!    lanes the moment its control state recurs, and stops the whole
//!    batch once every lane has an exact periodic reading. On the
//!    Fig. 1 / tree / feedback-ring corpus the detector must cut
//!    ≥ 40 % of the budgeted cycles while reporting the *same exact
//!    rational throughputs* as the scalar path (Fig. 1 stays exactly
//!    4/5).
//!
//! Results land in `BENCH_parallel.json` (threads, wall times, speedup,
//! cycles saved) so the perf trajectory is tracked across PRs.

use std::time::Instant;

use lip_bench::{banner, emit_report, mark, report_dir, table, Report};
use lip_core::RelayKind;
use lip_graph::{generate, Netlist};
use lip_obs::{ProgressSink, ProgressSnapshot, PromFileProgress};
use lip_sim::{measure, measure_batch_periodic, LanePatterns, Ratio, SettleProgram, LANES};

const REPS: usize = 3;
const CLAIMED_SPEEDUP: f64 = 3.0;
const MIN_CORES_FOR_SPEEDUP_GATE: usize = 4;
const EARLY_EXIT_BUDGET: u64 = 4096;
const CLAIMED_SAVED_FRACTION: f64 = 0.40;

/// The measurement corpus: every item is one independent scalar
/// steady-state measurement, the unit of work the executor spreads
/// across threads.
fn corpus() -> Vec<(String, Netlist)> {
    let mut tops = vec![
        ("fig1".to_string(), generate::fig1().netlist),
        ("tree2x2".to_string(), generate::tree(2, 2, 1).netlist),
        ("tree3x2".to_string(), generate::tree(3, 2, 2).netlist),
    ];
    for (s, r) in [(1usize, 1usize), (2, 1), (2, 2), (3, 1), (3, 2), (1, 3)] {
        tops.push((
            format!("ring{s}x{r}"),
            generate::ring(s, r, RelayKind::Full).netlist,
        ));
    }
    let mut seed = 0u64;
    let mut found = 0;
    while found < 8 {
        let (family, netlist) = generate::random_family(seed);
        if netlist.validate().is_ok() && !netlist.shells().is_empty() {
            tops.push((format!("rand{seed}_{family:?}"), netlist));
            found += 1;
        }
        seed += 1;
    }
    tops
}

/// One worker's unit of work: measure to steady state and serialise the
/// outcome, so whole-sweep results compare byte-for-byte.
fn measure_item(name: &str, netlist: &Netlist) -> String {
    let m = measure(netlist).expect("corpus netlists elaborate");
    let t = m.system_throughput().expect("corpus netlists have sinks");
    match m.periodicity {
        Some(p) => format!(
            "{name}: T={t} transient={} period={}",
            p.transient, p.period
        ),
        None => format!("{name}: T={t} aperiodic"),
    }
}

fn sweep(workers: usize, items: &[(String, Netlist)]) -> Vec<String> {
    lip_par::par_map_jobs(workers, items, |(name, netlist)| {
        measure_item(name, netlist)
    })
}

fn main() {
    banner(
        "EXP-P1",
        "parallel sweep executor + batched periodicity early-exit",
        "threads multiply sweep rate without changing results; lane retirement cuts >=40% of cycles",
    );

    // ------------------------------------------------------------------
    // Part 1: deterministic fan-out.
    // ------------------------------------------------------------------
    let items = corpus();
    let threads = lip_par::jobs();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let serial_results = sweep(1, &items);
    let parallel_results = sweep(threads, &items);
    assert_eq!(
        serial_results, parallel_results,
        "parallel sweep results diverge from serial — determinism contract broken"
    );

    let mut t_serial = f64::INFINITY;
    let mut t_parallel = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        std::hint::black_box(sweep(1, &items));
        t_serial = t_serial.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        std::hint::black_box(sweep(threads, &items));
        t_parallel = t_parallel.min(t0.elapsed().as_secs_f64());
    }
    let speedup = t_serial / t_parallel;
    let speedup_gated =
        threads >= MIN_CORES_FOR_SPEEDUP_GATE && cores >= MIN_CORES_FOR_SPEEDUP_GATE;
    // An un-gated run is recorded explicitly, never passed silently: the
    // JSON carries the machine-readable reason so log replay (and
    // `run_experiments.sh`) can surface which gate was skipped and why.
    let gate_skipped: Option<&str> = if speedup_gated {
        None
    } else if cores < MIN_CORES_FOR_SPEEDUP_GATE {
        Some("insufficient_cores")
    } else {
        Some("insufficient_workers")
    };
    println!(
        "corpus sweep: {} measurements, {} thread(s) on {} core(s): \
         {:.1} ms serial vs {:.1} ms parallel ({:.2}x), results byte-identical",
        items.len(),
        threads,
        cores,
        t_serial * 1e3,
        t_parallel * 1e3,
        speedup,
    );
    if let Some(reason) = gate_skipped {
        println!(
            "({CLAIMED_SPEEDUP}x gate SKIPPED [{reason}]: needs >= \
             {MIN_CORES_FOR_SPEEDUP_GATE} cores and LIP_JOBS >= \
             {MIN_CORES_FOR_SPEEDUP_GATE}; determinism still asserted)"
        );
    }
    println!();

    // ------------------------------------------------------------------
    // Part 2: periodicity early-exit at exact throughputs.
    // ------------------------------------------------------------------
    struct EarlyExitRow {
        name: String,
        throughput: Ratio,
        executed: u64,
        saved: u64,
        exact: bool,
    }
    let early_corpus = vec![
        ("fig1".to_string(), generate::fig1().netlist),
        ("tree2x2".to_string(), generate::tree(2, 2, 1).netlist),
        (
            "ring2x1".to_string(),
            generate::ring(2, 1, RelayKind::Full).netlist,
        ),
        (
            "ring3x2".to_string(),
            generate::ring(3, 2, RelayKind::Full).netlist,
        ),
    ];
    // Live telemetry: one snapshot per completed early-exit unit,
    // published to the Prometheus exposition the `lip_top` bin renders.
    let mut progress = PromFileProgress::new(report_dir().join("progress.prom"));
    let part2_started = Instant::now();
    let mut rows: Vec<EarlyExitRow> = Vec::new();
    for (name, netlist) in &early_corpus {
        let prog = SettleProgram::compile(netlist).expect("compiles");
        let pats = LanePatterns::broadcast(&prog);
        let t0 = Instant::now();
        let batch =
            measure_batch_periodic(netlist, &pats, EARLY_EXIT_BUDGET).expect("batch measures");
        #[allow(clippy::cast_precision_loss)]
        let rate = (batch.cycles * LANES as u64) as f64 / t0.elapsed().as_secs_f64().max(1e-9);
        let converged = batch.periodicity.iter().filter(|p| p.is_some()).count() as u64;
        progress.publish(&ProgressSnapshot {
            experiment: "exp_parallel_sweep".to_string(),
            topology: name.clone(),
            lanes: LANES as u64,
            lanes_converged: converged,
            cycles_executed: batch.cycles,
            cycles_per_sec: rate,
            cache_hits: 0,
            cache_misses: 0,
            elapsed_ns: u64::try_from(part2_started.elapsed().as_nanos()).unwrap_or(u64::MAX),
        });
        assert!(
            batch.all_converged(),
            "{name}: periodic corpus must converge within {EARLY_EXIT_BUDGET} cycles"
        );
        let scalar_t = measure(netlist)
            .expect("measures")
            .system_throughput()
            .expect("one sink");
        let batch_t = batch.system_throughput(0).expect("one sink");
        let exact = (0..LANES).all(|l| batch.system_throughput(l) == Some(scalar_t));
        rows.push(EarlyExitRow {
            name: name.clone(),
            throughput: batch_t,
            executed: batch.cycles,
            saved: batch.cycles_saved(),
            exact,
        });
    }
    if let Some(e) = progress.take_error() {
        eprintln!("warning: progress exposition stopped updating: {e}");
    }
    let fig1_exact = rows[0].throughput == Ratio::new(4, 5);
    let total_budget = EARLY_EXIT_BUDGET * early_corpus.len() as u64;
    let total_saved: u64 = rows.iter().map(|r| r.saved).sum();
    #[allow(clippy::cast_precision_loss)]
    let saved_fraction = total_saved as f64 / total_budget as f64;
    let all_exact = rows.iter().all(|r| r.exact);

    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.throughput.to_string(),
                r.executed.to_string(),
                r.saved.to_string(),
                mark(r.exact).into(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "topology",
                "T (exact)",
                "cycles executed",
                "cycles saved",
                "matches scalar"
            ],
            &printable,
        )
    );
    println!(
        "early exit saved {total_saved} of {total_budget} budgeted cycles \
         ({:.1}% — gate {:.0}%), throughputs exact on all {LANES} lanes",
        saved_fraction * 100.0,
        CLAIMED_SAVED_FRACTION * 100.0,
    );

    // ------------------------------------------------------------------
    // Persist + gate.
    // ------------------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"schema_version\": {},\n",
        lip_obs::SCHEMA_VERSION
    ));
    json.push_str("  \"experiment\": \"exp_parallel_sweep\",\n");
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(&format!("  \"corpus_size\": {},\n", items.len()));
    json.push_str(&format!("  \"wall_time_serial_sec\": {t_serial:.6},\n"));
    json.push_str(&format!("  \"wall_time_parallel_sec\": {t_parallel:.6},\n"));
    json.push_str(&format!("  \"speedup\": {speedup:.3},\n"));
    json.push_str(&format!("  \"speedup_gated\": {speedup_gated},\n"));
    json.push_str(&format!(
        "  \"gate_skipped\": {},\n",
        gate_skipped.map_or("null".to_string(), |r| format!("\"{r}\""))
    ));
    json.push_str(&format!("  \"early_exit_budget\": {total_budget},\n"));
    json.push_str(&format!("  \"cycles_saved\": {total_saved},\n"));
    json.push_str(&format!("  \"saved_fraction\": {saved_fraction:.4},\n"));
    json.push_str("  \"topologies\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"throughput\": \"{}\", \"cycles_executed\": {}, \
             \"cycles_saved\": {}, \"exact\": {}}}{comma}\n",
            r.name, r.throughput, r.executed, r.saved, r.exact
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_parallel.json", json).expect("write BENCH_parallel.json");
    println!("wrote BENCH_parallel.json");

    let ok = all_exact
        && fig1_exact
        && saved_fraction >= CLAIMED_SAVED_FRACTION
        && (!speedup_gated || speedup >= CLAIMED_SPEEDUP);
    let mut report = Report::new("exp_parallel_sweep");
    report
        .push_int("threads", threads as u64)
        .push_int("cores", cores as u64)
        .push_int("corpus_size", items.len() as u64)
        .push_f64("wall_time_serial_sec", t_serial)
        .push_f64("wall_time_parallel_sec", t_parallel)
        .push_f64("speedup", speedup)
        .push_bool("speedup_gated", speedup_gated)
        .push_str("gate_skipped", gate_skipped.unwrap_or("none"))
        .push_int("early_exit_budget", total_budget)
        .push_int("cycles_saved", total_saved)
        .push_f64("saved_fraction", saved_fraction)
        .push_bool("fig1_exact_four_fifths", fig1_exact)
        .push_bool("ok", ok);
    emit_report(&report);

    assert!(fig1_exact, "fig1 must stay exactly 4/5");
    assert!(all_exact, "batch throughputs must match the scalar path");
    assert!(
        saved_fraction >= CLAIMED_SAVED_FRACTION,
        "early exit saved only {:.1}% (< {:.0}%)",
        saved_fraction * 100.0,
        CLAIMED_SAVED_FRACTION * 100.0,
    );
    if speedup_gated && speedup < CLAIMED_SPEEDUP {
        eprintln!("parallel speedup below {CLAIMED_SPEEDUP}x: {speedup:.2}x");
        std::process::exit(1);
    }
}
