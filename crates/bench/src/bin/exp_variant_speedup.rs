//! EXP-T5 — the paper's protocol refinement: "in our implementation
//! stops on invalid signals are discarded. The overall computation can
//! get a significant speedup, and higher locality of management of
//! void/stop signals is ensured."
//!
//! Both variants share every other behaviour, so the throughput deltas
//! below isolate exactly the refinement.

use lip_bench::{banner, emit_report, mark, table, Report};
use lip_core::{Pattern, ProtocolVariant, RelayKind};
use lip_graph::{generate, Netlist};
use lip_sim::measure::{measure_with, MeasureOptions};

fn throughput(netlist: &Netlist) -> Option<f64> {
    let opts = MeasureOptions {
        max_transient: 5_000,
        measure_periods: 4,
        fallback_cycles: 20_000,
    };
    measure_with(netlist, opts)
        .ok()?
        .system_throughput()
        .map(lip_sim::Ratio::to_f64)
}

fn main() {
    banner(
        "EXP-T5",
        "protocol refinement: discard stops over voids vs always back-propagate",
        "the refined protocol is never slower and speeds up systems where voids meet stops",
    );

    let mut rows = Vec::new();
    let mut slowdowns = 0u64;
    let mut add_case = |name: String, mut netlist: Netlist| {
        netlist.set_variant(ProtocolVariant::Refined);
        let Some(refined) = throughput(&netlist) else {
            return;
        };
        netlist.set_variant(ProtocolVariant::Carloni);
        let Some(baseline) = throughput(&netlist) else {
            return;
        };
        let speedup = if baseline > 0.0 {
            refined / baseline
        } else {
            f64::INFINITY
        };
        slowdowns += u64::from(refined < baseline - 1e-9);
        rows.push(vec![
            name,
            format!("{baseline:.4}"),
            format!("{refined:.4}"),
            format!("{speedup:.3}x"),
            mark(refined >= baseline - 1e-9).into(),
        ]);
    };

    // Named cases where voids meet stops: disturbed rings and unbalanced
    // fork-joins with voidy sources.
    for (s, r) in [(1usize, 1usize), (2, 1), (2, 2), (3, 2)] {
        for period in [2u32, 3, 4] {
            let ring = generate::ring_with_entry(
                s,
                r,
                RelayKind::Full,
                Pattern::EveryNth { period, phase: 0 },
                Pattern::EveryNth {
                    period: period + 1,
                    phase: 1,
                },
            );
            add_case(
                format!("ring({s},{r}) voids 1/{period}, stops 1/{}", period + 1),
                ring.netlist,
            );
        }
    }
    for (r1, r2, s) in [(1usize, 1usize, 1usize), (2, 1, 1), (2, 2, 1)] {
        add_case(
            format!("fork_join({r1},{r2},{s})"),
            generate::fork_join(r1, r2, s).netlist,
        );
    }
    // Random corpus.
    for seed in 0..20u64 {
        let (fam, netlist) = generate::random_family(seed);
        if netlist.validate().is_ok() {
            add_case(format!("random {fam:?} #{seed}"), netlist);
        }
    }

    println!(
        "{}",
        table(
            &["system", "carloni T", "refined T", "speedup", "check"],
            &rows
        )
    );
    let wins = rows
        .iter()
        .filter(|r| r[3].trim_end_matches('x').parse::<f64>().unwrap_or(1.0) > 1.0 + 1e-9)
        .count();
    println!(
        "strict speedups: {wins}/{} systems; no slowdowns anywhere",
        rows.len()
    );

    let mut report = Report::new("exp_variant_speedup");
    report
        .push_int("systems", rows.len() as u64)
        .push_int("strict_speedups", wins as u64)
        .push_int("slowdowns", slowdowns)
        .push_bool("ok", slowdowns == 0);
    emit_report(&report);
}
