//! EXP-A4 — clock gating activity: the third shell duty quantified.
//!
//! Paper: the shell performs "Clock Gating: a module waiting for new
//! data and/or stopped keeps its present state." Every cycle a shell
//! does not fire is a gated cycle — the protocol's power dividend. In a
//! connected LID, steady-state token conservation forces every shell to
//! the same firing rate, the system throughput `T`; the gated fraction
//! is exactly `1 − T`.

use lip_bench::{banner, emit_report, mark, table, Report};
use lip_core::RelayKind;
use lip_graph::generate;
use lip_sim::measure::{measure, measure_activity};

fn main() {
    banner(
        "EXP-A4",
        "clock-gating activity per shell",
        "every shell of a connected LID fires at the system rate T; 1 − T of all cycles are clock-gated",
    );

    let mut rows = Vec::new();
    let mut uniform_systems = 0u64;
    let mut case = |name: String, netlist: &lip_graph::Netlist| {
        let t = measure(netlist)
            .expect("measures")
            .system_throughput()
            .expect("one sink");
        let acts = measure_activity(netlist).expect("measures");
        let uniform = acts.iter().all(|a| a.utilisation == t);
        uniform_systems += u64::from(uniform);
        let gated = 1.0 - t.to_f64();
        rows.push(vec![
            name,
            acts.len().to_string(),
            t.to_string(),
            format!("{:.1}%", gated * 100.0),
            mark(uniform).into(),
        ]);
    };

    case("Fig. 1 fork-join".into(), &generate::fig1().netlist);
    for (s, r) in [(2usize, 1usize), (2, 2), (1, 3)] {
        case(
            format!("ring({s},{r})"),
            &generate::ring(s, r, RelayKind::Full).netlist,
        );
    }
    case("tree(2,2,1)".into(), &generate::tree(2, 2, 1).netlist);
    for (r1, r2, sh) in [(2usize, 1usize, 1usize), (3, 1, 1)] {
        case(
            format!("fork_join({r1},{r2},{sh})"),
            &generate::fork_join(r1, r2, sh).netlist,
        );
    }
    case(
        "coupled composition".into(),
        &generate::composed_coupled(1, 1, 1, 1, 2).netlist,
    );

    println!(
        "{}",
        table(
            &[
                "system",
                "shells",
                "T (= per-shell rate)",
                "gated cycles",
                "uniform"
            ],
            &rows
        )
    );
    println!("the protocol's throughput loss is symmetric power savings: a ring at");
    println!("T = 1/4 clock-gates 75% of every shell's cycles with zero extra control");

    let systems = rows.len() as u64;
    let mut report = Report::new("exp_clock_gating");
    report
        .push_int("systems", systems)
        .push_int("uniform_systems", uniform_systems)
        .push_bool("ok", uniform_systems == systems);
    emit_report(&report);
}
