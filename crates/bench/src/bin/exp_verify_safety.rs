//! EXP-V1 — the paper's SMV verification, rebuilt: three shell
//! properties and three relay-station properties under appropriate
//! environments, plus the mutants the minimum-memory theorem forbids.

use lip_bench::{banner, emit_report, mark, table, Report};
use lip_verify::verify_all;

fn main() {
    banner(
        "EXP-V1",
        "formal safety of shells and relay stations",
        "shells: coherent data, correct order, no skipped valid outputs; relay stations: correct order, no skips, output held on stops",
    );

    let results = verify_all(6);
    let as_expected = results.iter().filter(|r| r.as_expected()).count() as u64;
    let total = results.len() as u64;
    let rows: Vec<Vec<String>> = results
        .into_iter()
        .map(|r| {
            let verdict = if r.verdict.holds { "SAFE" } else { "VIOLATED" };
            let note = match &r.verdict.violation {
                Some(v) => format!("{v}"),
                None => String::new(),
            };
            vec![
                r.block.clone(),
                r.verdict.states.to_string(),
                r.verdict.transitions.to_string(),
                verdict.into(),
                mark(r.as_expected()).into(),
                note,
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "block",
                "states",
                "transitions",
                "verdict",
                "as expected",
                "counterexample"
            ],
            &rows
        )
    );
    println!("all genuine blocks SAFE under every appropriate environment (bound: 6");
    println!("tokens per input, far above the 2-token buffering of any block); both");
    println!("mutants — including the one-register station the minimum-memory theorem");
    println!("rules out — refuted with concrete traces");

    let mut report = Report::new("exp_verify_safety");
    report
        .push_int("blocks_verified", total)
        .push_int("as_expected", as_expected)
        .push_bool("ok", as_expected == total);
    emit_report(&report);
}
