//! EXP-I1 — incremental compilation: patch latency, byte-equivalence,
//! and the end-to-end edit loop.
//!
//! The delta-compilation layer (see `lip_sim::patch`) claims that a
//! one-relay edit costs a table splice instead of a full
//! `SettleProgram::compile`. This experiment pins that down with three
//! gates over a sweep corpus of FIFO-relay topologies:
//!
//! 1. **Patch latency** — a schedule of capacity edits applied as
//!    [`patch_fifo_capacity`](lip_sim::SettleProgram::patch_fifo_capacity)
//!    must run `>= 20x` faster per edit (min-of-7) than paying a full
//!    recompile per edit.
//! 2. **Byte-equivalence** — after *every* edit of a mixed schedule
//!    (capacity changes, kind changes, relay insertions) the patched
//!    program must compare equal to a from-scratch compile of the
//!    identically edited netlist: tables, op tape and
//!    `stable_structural_hash` — the property `ThroughputCache` keying
//!    rests on.
//! 3. **Edit-loop wall time** — `size_each_relay` on a cold cache must
//!    beat the pre-incremental baseline (clone + full compile per
//!    bisection probe, reconstructed here) end to end (min-of-5).
//!
//! Artefact: `BENCH_incremental.json` (versioned, jq-gated in CI) plus
//! the standard report in `target/reports/`.

use std::time::Instant;

use lip_analysis::size_each_relay;
use lip_bench::{banner, emit_report, mark, table, Report};
use lip_core::RelayKind;
use lip_graph::{generate, Netlist, NodeId, NodeKind};
use lip_sim::{NetlistDelta, Ratio, SettleProgram, ThroughputCache};

const REPS: usize = 7;
const SIZING_REPS: usize = 5;
/// Gate: capacity-only patches beat per-edit full recompiles by this.
const CLAIMED_SPEEDUP: f64 = 20.0;
/// Edits per timed pass — enough to amortise timer quantisation.
const EDITS_PER_PASS: usize = 64;

/// Sweep corpus: every topology carries FIFO relay stations so capacity
/// patches apply, spanning a pipeline, a feedback ring and a
/// reconvergent pair.
fn corpus() -> Vec<(String, Netlist)> {
    vec![
        (
            "chain32x4_fifo3".to_string(),
            generate::chain(32, 4, RelayKind::Fifo(3)).netlist,
        ),
        (
            "ring16x6_fifo3".to_string(),
            generate::ring(16, 6, RelayKind::Fifo(3)).netlist,
        ),
        ("fork_join_48_24".to_string(), {
            let mut n = generate::fork_join(48, 48, 24).netlist;
            // Give the first long-branch relay a FIFO so the corpus
            // exercises the queue-sizing shape on this topology too.
            let relay = first_relay(&n);
            n.set_relay_kind(relay, RelayKind::Fifo(3));
            n
        }),
    ]
}

/// First relay station in node-id order.
fn first_relay(netlist: &Netlist) -> NodeId {
    netlist
        .nodes()
        .find(|(_, node)| matches!(node.kind(), NodeKind::Relay { .. }))
        .map(|(id, _)| id)
        .expect("corpus topologies have relays")
}

/// First FIFO relay station in node-id order.
fn first_fifo(netlist: &Netlist) -> NodeId {
    netlist
        .nodes()
        .find(|(_, node)| {
            matches!(
                node.kind(),
                NodeKind::Relay {
                    kind: RelayKind::Fifo(_)
                }
            )
        })
        .map(|(id, _)| id)
        .expect("corpus topologies have FIFO relays")
}

/// The timed capacity schedule: same-plane toggles, i.e. pure op
/// splices with no occupancy-plane growth. This is the edit the gate
/// names ("capacity-only patch") and the hot case of a bisection
/// narrowing within a plane; plane-crossing edits (in-place tape
/// rebuilds) are exercised by the equivalence schedule instead.
fn capacity_schedule() -> Vec<u8> {
    // 2 and 3 share two occupancy planes, so every toggle is a splice;
    // starting from capacity 3 every edit is a real change, never a
    // no-op.
    (0..EDITS_PER_PASS)
        .map(|i| if i % 2 == 0 { 2 } else { 3 })
        .collect()
}

fn min_time(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut t = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        t = t.min(t0.elapsed().as_secs_f64());
    }
    t
}

struct LatencyRow {
    name: String,
    full_us: f64,
    patch_us: f64,
    speedup: f64,
}

/// Gate 1: per-edit latency, full recompile vs capacity patch.
fn latency_rows() -> Vec<LatencyRow> {
    let schedule = capacity_schedule();
    corpus()
        .into_iter()
        .map(|(name, netlist)| {
            let fifo = first_fifo(&netlist);
            // Full-recompile leg: what every edit cost before this
            // layer — mutate the netlist, compile from scratch.
            let mut full_netlist = netlist.clone();
            let t_full = min_time(REPS, || {
                for &cap in &schedule {
                    full_netlist.set_relay_kind(fifo, RelayKind::Fifo(cap));
                    std::hint::black_box(
                        SettleProgram::compile(&full_netlist).expect("corpus compiles"),
                    );
                }
            });
            // Patch leg: one compile up front, then pure patches.
            let mut prog = SettleProgram::compile(&netlist).expect("corpus compiles");
            let t_patch = min_time(REPS, || {
                for &cap in &schedule {
                    std::hint::black_box(prog.patch_fifo_capacity(fifo, cap));
                }
            });
            let per_edit = |t: f64| t / schedule.len() as f64 * 1e6;
            LatencyRow {
                name,
                full_us: per_edit(t_full),
                patch_us: per_edit(t_patch),
                speedup: t_full / t_patch,
            }
        })
        .collect()
}

/// Gate 2: a mixed edit schedule, checking byte-equivalence against a
/// from-scratch compile after every single edit.
fn equivalence_ok() -> (bool, u64) {
    let mut edits = 0u64;
    for (name, mut netlist) in corpus() {
        let mut prog = SettleProgram::compile(&netlist).expect("corpus compiles");
        let fifo = first_fifo(&netlist);
        let channels: Vec<_> = netlist.channels().map(|(id, _)| id).collect();
        let mut deltas: Vec<NetlistDelta> = Vec::new();
        for (i, cap) in [2u8, 4, 3, 9, 2].into_iter().enumerate() {
            deltas.push(NetlistDelta::SetRelayKind {
                node: fifo,
                kind: RelayKind::Fifo(cap),
            });
            deltas.push(NetlistDelta::InsertRelay {
                channel: channels[(i * 3) % channels.len()],
                kind: match i % 3 {
                    0 => RelayKind::Full,
                    1 => RelayKind::Fifo(3),
                    _ => RelayKind::Half,
                },
            });
        }
        deltas.push(NetlistDelta::SetRelayKind {
            node: fifo,
            kind: RelayKind::Full,
        });
        deltas.push(NetlistDelta::SetRelayKind {
            node: fifo,
            kind: RelayKind::Fifo(2),
        });
        for delta in &deltas {
            delta.apply_to(&mut netlist);
            prog.recompile_delta(delta);
            let fresh = SettleProgram::compile(&netlist).expect("edited corpus compiles");
            if prog != fresh || prog.stable_structural_hash() != fresh.stable_structural_hash() {
                eprintln!("{name}: patched program diverged from fresh compile on {delta:?}");
                return (false, edits);
            }
            edits += 1;
        }
    }
    (true, edits)
}

/// The pre-incremental bisection: clone + full compile + memoized
/// measure per probe — reconstructed verbatim so the end-to-end gate
/// compares against what `size_each_relay` cost before this layer.
fn baseline_size_each_relay(
    netlist: &Netlist,
    relays: &[NodeId],
    max_cap: u8,
    cache: &mut ThroughputCache,
) -> Vec<(NodeId, u8, Ratio)> {
    let throughput_at = |relay: NodeId, k: u8, cache: &mut ThroughputCache| {
        let mut candidate = netlist.clone();
        candidate.set_relay_kind(relay, RelayKind::Fifo(k));
        cache
            .measure(&candidate)
            .expect("corpus measures")
            .system_throughput()
            .expect("corpus has sinks")
    };
    relays
        .iter()
        .map(|&relay| {
            let best = throughput_at(relay, max_cap, cache);
            let (mut lo, mut hi) = (2u8, max_cap);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if throughput_at(relay, mid, cache) == best {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            (relay, lo, best)
        })
        .collect()
}

struct SizingResult {
    baseline_sec: f64,
    patched_sec: f64,
    speedup: f64,
    agree: bool,
}

/// Gate 3: end-to-end `size_each_relay` on a cold cache, old path vs
/// patch path, over a small fast-converging topology where compile
/// time is a visible fraction of every probe.
fn sizing_comparison() -> SizingResult {
    let fig1 = generate::fig1();
    let relays: Vec<NodeId> = fig1.netlist.relays();
    let max_cap = 8u8;

    let mut baseline = Vec::new();
    let t_base = min_time(SIZING_REPS, || {
        let mut cache = ThroughputCache::new(); // cold per rep
        baseline = baseline_size_each_relay(&fig1.netlist, &relays, max_cap, &mut cache);
    });
    let mut patched = Vec::new();
    let t_patch = min_time(SIZING_REPS, || {
        let mut cache = ThroughputCache::new(); // cold per rep
        patched = size_each_relay(&fig1.netlist, &relays, max_cap, &mut cache).expect("fig1 sizes");
    });
    let agree = baseline.len() == patched.len()
        && baseline
            .iter()
            .zip(&patched)
            .all(|(b, p)| b.0 == p.relay && b.1 == p.capacity && b.2 == p.throughput);
    SizingResult {
        baseline_sec: t_base,
        patched_sec: t_patch,
        speedup: t_base / t_patch,
        agree,
    }
}

fn main() {
    banner(
        "EXP-I1",
        "incremental compilation: patch latency, equivalence, edit loop",
        "capacity patch >= 20x full recompile; patched == fresh compile byte-for-byte; \
         cold-cache size_each_relay faster end to end",
    );

    let rows = latency_rows();
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.2}", r.full_us),
                format!("{:.3}", r.patch_us),
                format!("{:.1}x", r.speedup),
                mark(r.speedup >= CLAIMED_SPEEDUP).into(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "topology",
                "full us/edit",
                "patch us/edit",
                "speedup",
                ">=20x"
            ],
            &printable,
        )
    );
    let min_speedup = rows.iter().map(|r| r.speedup).fold(f64::INFINITY, f64::min);

    let (equivalent, edits_checked) = equivalence_ok();
    println!(
        "equivalence: {} mixed edits (capacity / kind / insertion) byte-equal to fresh compiles {}",
        edits_checked,
        mark(equivalent),
    );

    let sizing = sizing_comparison();
    println!(
        "size_each_relay (cold cache): baseline {:.2} ms, patch path {:.2} ms -> {:.2}x, \
         results agree: {} (gate > 1x) {}",
        sizing.baseline_sec * 1e3,
        sizing.patched_sec * 1e3,
        sizing.speedup,
        mark(sizing.agree),
        mark(sizing.speedup > 1.0),
    );
    println!();

    let ok = min_speedup >= CLAIMED_SPEEDUP && equivalent && sizing.speedup > 1.0 && sizing.agree;

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"schema_version\": {},\n",
        lip_obs::SCHEMA_VERSION
    ));
    json.push_str("  \"experiment\": \"exp_incremental\",\n");
    json.push_str(&format!("  \"claimed_speedup\": {CLAIMED_SPEEDUP},\n"));
    json.push_str(&format!("  \"min_patch_speedup\": {min_speedup:.2},\n"));
    json.push_str(&format!("  \"equivalent\": {equivalent},\n"));
    json.push_str(&format!("  \"edits_checked\": {edits_checked},\n"));
    json.push_str("  \"topologies\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"full_us_per_edit\": {:.3}, \"patch_us_per_edit\": {:.4}, \
             \"speedup\": {:.2}, \"ok\": {}}}{comma}\n",
            r.name,
            r.full_us,
            r.patch_us,
            r.speedup,
            r.speedup >= CLAIMED_SPEEDUP
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"sizing\": {{\"baseline_sec\": {:.6}, \"patched_sec\": {:.6}, \
         \"speedup\": {:.3}, \"agree\": {}, \"ok\": {}}},\n",
        sizing.baseline_sec,
        sizing.patched_sec,
        sizing.speedup,
        sizing.agree,
        sizing.speedup > 1.0 && sizing.agree
    ));
    json.push_str(&format!("  \"ok\": {ok}\n"));
    json.push_str("}\n");
    std::fs::write("BENCH_incremental.json", json).expect("write BENCH_incremental.json");
    println!("wrote BENCH_incremental.json");

    let mut report = Report::new("exp_incremental");
    report
        .push_f64("claimed_speedup", CLAIMED_SPEEDUP)
        .push_f64("min_patch_speedup", min_speedup)
        .push_bool("equivalent", equivalent)
        .push_int("edits_checked", edits_checked)
        .push_f64("sizing_baseline_sec", sizing.baseline_sec)
        .push_f64("sizing_patched_sec", sizing.patched_sec)
        .push_f64("sizing_speedup", sizing.speedup)
        .push_bool("sizing_agree", sizing.agree)
        .push_int("topologies", rows.len() as u64)
        .push_bool("ok", ok);
    emit_report(&report);

    assert!(
        min_speedup >= CLAIMED_SPEEDUP,
        "capacity patch only {min_speedup:.1}x faster than full recompile (gate {CLAIMED_SPEEDUP}x)"
    );
    assert!(equivalent, "patched programs diverged from fresh compiles");
    assert!(
        sizing.agree,
        "patch-path size_each_relay changed the answer"
    );
    assert!(
        sizing.speedup > 1.0,
        "cold-cache size_each_relay not faster on the patch path ({:.2}x)",
        sizing.speedup
    );
}
