//! EXP-T3 — the feedback-loop formula `T = S/(S+R)` over a parameter
//! sweep, for both relay-station kinds.
//!
//! Paper: "Graphs containing loops of shells and relay stations ... are
//! responsible for the worst throughput degradation. ... A maximum of S
//! valid data can be present at a time, out of S+R positions."

use lip_analysis::predict_throughput;
use lip_bench::{banner, emit_report, mark, table, Report};
use lip_core::RelayKind;
use lip_graph::generate;
use lip_sim::{measure, Ratio};

fn main() {
    banner(
        "EXP-T3",
        "feedback loops: T = S/(S+R)",
        "loop throughput S/(S+R) for full stations; half stations add capacity without latency (model-exact)",
    );

    let mut rows = Vec::new();
    let mut mismatches = 0u64;
    for s in 1..=8usize {
        for r in 0..=8usize {
            let ring = generate::ring(s, r, RelayKind::Full);
            if ring.netlist.validate().is_err() {
                continue; // r = 0 rings violate minimum memory
            }
            let formula = Ratio::new(s as u64, (s + r) as u64);
            let measured = measure(&ring.netlist)
                .expect("ring measures")
                .system_throughput()
                .expect("one sink");
            mismatches += u64::from(measured != formula);
            rows.push(vec![
                s.to_string(),
                r.to_string(),
                "full".into(),
                formula.to_string(),
                measured.to_string(),
                mark(measured == formula).into(),
            ]);
        }
    }
    // Half-station rings: latency-free stations leave T = 1 (predicted
    // exactly by the marked-graph model).
    for s in 1..=4usize {
        for r in 1..=4usize {
            let ring = generate::ring(s, r, RelayKind::Half);
            if ring.netlist.validate().is_err() {
                continue;
            }
            let predicted = predict_throughput(&ring.netlist).expect("periodic");
            let measured = measure(&ring.netlist)
                .expect("ring measures")
                .system_throughput()
                .expect("one sink");
            mismatches += u64::from(measured != predicted);
            rows.push(vec![
                s.to_string(),
                r.to_string(),
                "half".into(),
                predicted.to_string(),
                measured.to_string(),
                mark(measured == predicted).into(),
            ]);
        }
    }
    println!(
        "{}",
        table(&["S", "R", "kind", "predicted", "measured", "check"], &rows)
    );

    let mut report = Report::new("exp_feedback");
    report
        .push_int("rings_checked", rows.len() as u64)
        .push_int("mismatches", mismatches)
        .push_bool("ok", mismatches == 0);
    emit_report(&report);
}
