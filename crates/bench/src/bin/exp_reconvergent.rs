//! EXP-T2 — the reconvergent feed-forward formula `T = (m − i)/m`.
//!
//! Paper: "The number of invalid data is the difference of relay
//! stations i between the feedforward branches. ... The general formula
//! T = (m−i)/m, where m is the total number of relay stations in the
//! loop, plus the number of shells on the path with the highest number
//! of relay stations."
//!
//! The closed form is stated for full relay stations; segments realised
//! with half stations (rows with a `0` count) are predicted exactly by
//! the marked-graph model instead, which subsumes the formula.

use lip_analysis::predict_throughput;
use lip_bench::{banner, emit_report, mark, table, Report};
use lip_graph::generate;
use lip_sim::{measure, Ratio};

fn main() {
    banner(
        "EXP-T2",
        "reconvergent feed-forward: T = (m - i)/m",
        "per-period deficit equals the branch imbalance i; m counts loop relay stations plus the shells on the most-pipelined branch",
    );

    let mut rows = Vec::new();
    let mut mismatches = 0u64;
    for r1 in 0..=3usize {
        for r2 in 0..=3usize {
            for s in 0..=3usize {
                let f = generate::fork_join(r1, r2, s);
                let long = r1 + r2;
                let all_full = r1 > 0 && r2 > 0 && s > 0;
                let formula = if all_full {
                    let loop_relays = (long + s) as u64;
                    let (m, i) = if long >= s {
                        (loop_relays + 2, (long - s) as u64)
                    } else {
                        (loop_relays + 1, (s - long) as u64)
                    };
                    Some(if i == 0 {
                        Ratio::new(1, 1)
                    } else {
                        Ratio::new(m - i, m)
                    })
                } else {
                    None
                };
                let predicted = predict_throughput(&f.netlist).expect("periodic");
                let measured = measure(&f.netlist)
                    .expect("fork-join measures")
                    .system_throughput()
                    .expect("one sink");
                let ok = measured == predicted && formula.is_none_or(|f| f == measured);
                mismatches += u64::from(!ok);
                rows.push(vec![
                    format!("({r1},{r2},{s})"),
                    (long as i64 - s as i64).to_string(),
                    formula.map_or_else(|| "(half RS)".into(), |f| f.to_string()),
                    predicted.to_string(),
                    measured.to_string(),
                    mark(ok).into(),
                ]);
            }
        }
    }
    println!(
        "{}",
        table(
            &[
                "(r1,r2,s)",
                "imbalance",
                "(m-i)/m",
                "model",
                "measured",
                "check"
            ],
            &rows
        )
    );
    println!("the Fig. 1 instance is (1,1,1): m = 5, i = 1, T = 4/5");
    println!("(the marked-graph model agrees with simulation on every row, including");
    println!(" half-station segments the closed form does not address)");

    let mut report = Report::new("exp_reconvergent");
    report
        .push_int("fork_joins_checked", rows.len() as u64)
        .push_int("mismatches", mismatches)
        .push_bool("ok", mismatches == 0);
    emit_report(&report);
}
