//! EXP-A2 — the minimum-memory trade-off, made executable.
//!
//! The paper simplifies the shell ("it does not save the incoming stop
//! signals") and compensates with a half or full relay station between
//! shells. The alternative — the earlier buffered shell that registers
//! its inputs — spends exactly the same storage. This ablation builds
//! the same designs both ways and shows: identical behaviour, identical
//! register budget, and one structural freedom the simplified shell
//! lacks (relay-free loops).

use lip_bench::{banner, emit_report, mark, table, Report};
use lip_graph::generate;
use lip_sim::{measure, Ratio, System};

fn main() {
    banner(
        "EXP-A2",
        "simplified shell + half station  vs  buffered shell",
        "same total memory, identical streams; buffered shells additionally allow relay-free loops",
    );

    // 1. Memory + behaviour equivalence on pipelines.
    let mut rows = Vec::new();
    let mut all_identical = true;
    for shells in [1usize, 2, 4, 8] {
        let (simple, buffered) = generate::memory_equivalent_chains(shells);
        let cs = simple.netlist.census();
        let cb = buffered.netlist.census();
        // Register budget: one output register per shell in both; one
        // half-station register per simplified stage vs one input buffer
        // per buffered stage.
        let regs_simple = cs.shells + cs.half_relays;
        let regs_buffered = cb.shells + cb.buffered_shells;

        let mut a = System::new(&simple.netlist).expect("elaborates");
        let mut b = System::new(&buffered.netlist).expect("elaborates");
        a.run(120);
        b.run(120);
        let sa = a.sink(simple.sink).expect("sink");
        let sb = b.sink(buffered.sink).expect("sink");
        let identical = sa.received() == sb.received() && sa.voids_seen() == sb.voids_seen();
        all_identical &= identical && regs_simple == regs_buffered;
        rows.push(vec![
            shells.to_string(),
            regs_simple.to_string(),
            regs_buffered.to_string(),
            format!("{}", sa.received().len()),
            format!("{}", sb.received().len()),
            mark(identical && regs_simple == regs_buffered).into(),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "stages",
                "regs (simple+half)",
                "regs (buffered)",
                "tokens A",
                "tokens B",
                "identical"
            ],
            &rows
        )
    );

    // 2. The structural freedom: loops with no relay stations at all.
    let mut rows = Vec::new();
    let mut loops_at_unit = 0u64;
    for s in 1..=5usize {
        let ring = generate::buffered_ring(s, 0);
        ring.netlist.validate().expect("buffered loops are legal");
        let t = measure(&ring.netlist)
            .expect("measures")
            .system_throughput()
            .expect("one sink");
        // Buffered shells fuse a half station per input: zero added
        // latency, so the relay-free loop runs at full rate.
        loops_at_unit += u64::from(t == Ratio::new(1, 1));
        rows.push(vec![
            s.to_string(),
            "0".into(),
            t.to_string(),
            mark(t == Ratio::new(1, 1)).into(),
        ]);
    }
    println!(
        "{}",
        table(
            &["buffered shells in loop", "relay stations", "T", "check"],
            &rows
        )
    );
    println!("a simplified-shell loop with zero relay stations is rejected by the");
    println!("validator (combinational stop loop) — the minimum-memory theorem; the");
    println!("buffered shell pays the same registers inside the shell instead");

    let mut report = Report::new("exp_ablation_memory");
    report
        .push_bool("chains_identical", all_identical)
        .push_int("relay_free_loops_at_unit_throughput", loops_at_unit)
        .push_bool("ok", all_identical && loops_at_unit == 5);
    emit_report(&report);
}
