//! EXP-A1 — equalizer cost ablation: full vs half spare stations.
//!
//! Path equalization inserts *full* relay stations (2 registers each) on
//! the faster branch and restores `T = 1` exactly. Half stations are
//! half the storage (1 register) and add no latency — each one appended
//! to the short branch adds a token *and* a cycle to the implicit loop,
//! so throughput climbs `(m−i)/m → (m−i+1)/(m+1) → …` asymptotically
//! towards 1 without reaching it. This table quantifies the trade-off
//! the paper's "spare relay stations" remark leaves open.

use lip_bench::{banner, emit_report, table, Report};
use lip_core::RelayKind;
use lip_graph::generate;
use lip_sim::measure;

fn main() {
    banner(
        "EXP-A1",
        "equalizing with full vs half spare stations",
        "full spares reach T = 1 exactly; half spares approach it asymptotically at half the storage",
    );

    let mut rows = Vec::new();
    let mut full_reaches_unit = false;
    let mut best_half = 0.0f64;
    for spares in 0..=4usize {
        for kind in [RelayKind::Full, RelayKind::Half] {
            // Fig. 1 instance with `spares` extra stations appended to
            // the short branch.
            let mut f = generate::fig1();
            let mut target = f
                .netlist
                .out_channel(f.short_relays[0], 0)
                .expect("short branch is connected");
            for _ in 0..spares {
                let rs = f.netlist.insert_relay_on_channel(target, kind);
                target = f.netlist.out_channel(rs, 0).expect("just connected");
            }
            f.netlist.validate().expect("legal");
            let t = measure(&f.netlist)
                .expect("measures")
                .system_throughput()
                .expect("one sink");
            let registers = spares * kind.capacity();
            match kind {
                RelayKind::Full if t.to_f64() == 1.0 => full_reaches_unit = true,
                RelayKind::Half => best_half = best_half.max(t.to_f64()),
                _ => {}
            }
            rows.push(vec![
                spares.to_string(),
                kind.to_string(),
                registers.to_string(),
                t.to_string(),
                format!("{:.4}", t.to_f64()),
            ]);
        }
    }
    println!(
        "{}",
        table(
            &["spares", "kind", "extra registers", "T", "T (dec)"],
            &rows
        )
    );
    println!("one full spare (2 registers) buys T = 1 exactly; half spares (1 register");
    println!("each) climb 4/5 -> 5/6 -> 6/7 -> ... and never close the gap — the");
    println!("paper's full relay station is the right equalizer, the half station the");
    println!("right minimum-memory insert");

    let mut report = Report::new("exp_ablation_equalizer");
    report
        .push_int("configurations", rows.len() as u64)
        .push_bool("full_spare_reaches_unit", full_reaches_unit)
        .push_f64("best_half_spare_throughput", best_half)
        .push_bool("ok", full_reaches_unit && best_half < 1.0);
    emit_report(&report);
}
