//! EXP-L1 — `lip-lint` proves the paper's implementation issues without
//! simulation: every LIP005 bottleneck prediction equals the batched
//! simulator's measured steady state *exactly* (Ratio equality, no
//! tolerance), LIP003's deadlock verdict matches the liveness oracle on
//! pristine and sabotaged environments, and applying the machine fix-its
//! restores full throughput on the paper's Fig. 1.

use lip_bench::{banner, emit_report, mark, table, Report};
use lip_core::RelayKind;
use lip_graph::{generate, Netlist, SourceMap};
use lip_lint::{apply_fixits, lint, RuleId};
use lip_sim::measure::check_liveness;
use lip_sim::{measure_batch_periodic, LanePatterns, Ratio, SettleProgram};

/// The linter's throughput verdict: LIP005's attached prediction, or
/// full rate when the bottleneck rule stays silent.
fn lint_prediction(netlist: &Netlist) -> Ratio {
    lint(netlist, &SourceMap::new())
        .iter()
        .find(|d| d.rule == RuleId::Lip005)
        .and_then(|d| d.predicted_throughput)
        .unwrap_or(Ratio::new(1, 1))
}

/// Lane-0 steady state from the batched periodic simulator.
fn batch_measured(netlist: &Netlist) -> Option<Ratio> {
    let prog = SettleProgram::compile(netlist).ok()?;
    let pats = LanePatterns::broadcast(&prog);
    let m = measure_batch_periodic(netlist, &pats, 8192).ok()?;
    m.periodicity[0].as_ref()?;
    m.system_throughput(0)
}

/// The codes of every rule that fires on `netlist`, comma-joined.
fn fired_codes(netlist: &Netlist) -> String {
    let diags = lint(netlist, &SourceMap::new());
    if diags.is_empty() {
        return "-".into();
    }
    let codes: Vec<&str> = diags.iter().map(|d| d.rule.code()).collect();
    codes.join(",")
}

/// Rewrite the first pattern-free `source` statement to void on every
/// cycle — a statically dead environment — and reparse.
fn kill_first_source(netlist: &Netlist) -> Option<Netlist> {
    let text = lip_graph::write_netlist(netlist);
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    let line = lines
        .iter_mut()
        .find(|l| l.starts_with("source ") && !l.contains("voids="))?;
    line.push_str(" voids=every:1:0");
    let (mutated, _) = lip_graph::parse_netlist(&lines.join("\n")).ok()?;
    Some(mutated)
}

fn main() {
    banner(
        "EXP-L1",
        "static protocol analysis (lip-lint) vs simulation",
        "all five rule families are provable from the netlist alone: bottleneck ratios match the simulator exactly, deadlock verdicts match the liveness oracle, and fix-its restore full rate",
    );

    // 1. Named corpus: static prediction vs measured steady state.
    let corpus: Vec<(&str, Netlist)> = vec![
        ("fig1", generate::fig1().netlist),
        ("tree(2,2,1)", generate::tree(2, 2, 1).netlist),
        ("tree(3,2,2)", generate::tree(3, 2, 2).netlist),
        (
            "ring(2,1,full)",
            generate::ring(2, 1, RelayKind::Full).netlist,
        ),
        (
            "ring(2,3,full)",
            generate::ring(2, 3, RelayKind::Full).netlist,
        ),
        (
            "ring(3,2,half)",
            generate::ring(3, 2, RelayKind::Half).netlist,
        ),
        (
            "chain(3,2,full)",
            generate::chain(3, 2, RelayKind::Full).netlist,
        ),
        ("fork_join(3,0,2)", generate::fork_join(3, 0, 2).netlist),
        (
            "composed(1,1,1,2,1)",
            generate::composed_coupled(1, 1, 1, 2, 1).netlist,
        ),
        ("buffered_ring(3,1)", generate::buffered_ring(3, 1).netlist),
    ];
    let named_total = corpus.len() as u64;
    let mut named_exact = 0u64;
    let mut rows = Vec::new();
    for (name, netlist) in &corpus {
        let predicted = lint_prediction(netlist);
        let measured = batch_measured(netlist).expect("lane 0 converges");
        let exact = predicted == measured;
        named_exact += u64::from(exact);
        rows.push(vec![
            (*name).to_owned(),
            fired_codes(netlist),
            predicted.to_string(),
            measured.to_string(),
            mark(exact).into(),
        ]);
    }
    println!(
        "{}",
        table(
            &["system", "rules fired", "predicted", "measured", "exact"],
            &rows
        )
    );
    println!("predictions are exact Ratio equalities, not approximations\n");

    // 2. Random corpus: exact agreement + per-rule census.
    let mut random_checked = 0u64;
    let mut random_exact = 0u64;
    let mut census = [0u64; RuleId::ALL.len()];
    for seed in 0..60u64 {
        let (_, netlist) = generate::random_family(seed);
        if netlist.validate().is_err() {
            continue;
        }
        for d in lint(&netlist, &SourceMap::new()) {
            census[d.rule.index()] += 1;
        }
        let Some(measured) = batch_measured(&netlist) else {
            continue;
        };
        random_checked += 1;
        random_exact += u64::from(lint_prediction(&netlist) == measured);
    }
    println!("== random corpus (seeds 0..60) ==");
    let census_rows: Vec<Vec<String>> = RuleId::ALL
        .iter()
        .map(|r| {
            vec![
                r.code().to_owned(),
                r.summary().to_owned(),
                census[r.index()].to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(&["rule", "checks", "diagnostics"], &census_rows)
    );
    println!(
        "{random_exact}/{random_checked} periodic lanes: static == measured {}",
        mark(random_exact == random_checked && random_checked > 0)
    );

    // 3. LIP003 vs the liveness oracle, pristine and sabotaged.
    let mut live_total = 0u64;
    let mut live_agree = 0u64;
    for seed in 0..40u64 {
        let (_, netlist) = generate::random_family(seed);
        if netlist.validate().is_err() {
            continue;
        }
        for system in [Some(netlist.clone()), kill_first_source(&netlist)] {
            let Some(system) = system else { continue };
            if system.validate().is_err() {
                continue;
            }
            let static_dead = lint(&system, &SourceMap::new())
                .iter()
                .any(|d| d.rule == RuleId::Lip003);
            let report = check_liveness(&system, 20_000, 5_000).expect("valid netlist");
            live_total += 1;
            live_agree += u64::from(static_dead != report.is_live());
        }
    }
    println!("\n== LIP003 (guaranteed deadlock) vs simulated liveness ==");
    println!(
        "{live_agree}/{live_total} verdicts agree (pristine + dead-source injections) {}\n",
        mark(live_agree == live_total && live_total > 0)
    );

    // 4. Fix-its on Fig. 1: equalization restores full rate.
    let mut fig1 = generate::fig1().netlist;
    let before_predicted = lint_prediction(&fig1);
    let before_measured = batch_measured(&fig1).expect("fig1 converges");
    let diags = lint(&fig1, &SourceMap::new());
    let fix_report = apply_fixits(&mut fig1, &diags).expect("fix-its apply");
    let after_predicted = lint_prediction(&fig1);
    let after_measured = batch_measured(&fig1).expect("fixed fig1 converges");
    let after_clean = lint(&fig1, &SourceMap::new()).is_empty();
    let full = Ratio::new(1, 1);
    let fix_ok = before_predicted == before_measured
        && after_predicted == full
        && after_measured == full
        && after_clean;
    println!("== machine-applicable fix-its (Fig. 1) ==");
    println!(
        "{}",
        table(
            &["stage", "predicted", "measured", "lints clean"],
            &[
                vec![
                    "before".into(),
                    before_predicted.to_string(),
                    before_measured.to_string(),
                    "no".into(),
                ],
                vec![
                    format!("after ({} relay(s) inserted)", fix_report.total_inserted()),
                    after_predicted.to_string(),
                    after_measured.to_string(),
                    if after_clean {
                        "yes".into()
                    } else {
                        "no".into()
                    },
                ],
            ],
        )
    );
    println!(
        "equalization lifts Fig. 1 from {before_measured} to {after_measured} tokens/cycle {}",
        mark(fix_ok)
    );

    let mut report = Report::new("exp_static_analysis");
    report
        .push_int("named_systems", named_total)
        .push_int("named_exact", named_exact)
        .push_int("random_checked", random_checked)
        .push_int("random_exact", random_exact)
        .push_int("liveness_verdicts", live_total)
        .push_int("liveness_agree", live_agree)
        .push_ratio("fig1_before", before_measured.num(), before_measured.den())
        .push_ratio("fig1_after", after_measured.num(), after_measured.den())
        .push_bool("fixits_clean", after_clean)
        .push_bool(
            "ok",
            named_exact == named_total
                && random_exact == random_checked
                && random_checked >= 30
                && live_agree == live_total
                && fix_ok,
        );
    emit_report(&report);
}
