//! EXP-B1 — bit-parallel batched skeleton sweep.
//!
//! The paper's cost argument ("the simulation cost is absolutely
//! negligible") invites sweeping *many* stall scenarios, not just one.
//! The batched engine packs 64 independent scenarios into the bits of a
//! `u64` and settles all of them per pass with word-wide boolean
//! operations. This experiment runs a 64-lane throughput sweep both
//! ways — 64 scalar [`SkeletonSystem`] runs versus one
//! [`BatchSkeleton`] run — verifies the sink counts are bit-identical,
//! and persists the measured rates to `BENCH_skeleton.json` so the
//! perf trajectory is tracked across PRs.

use std::sync::Arc;
use std::time::Instant;

use lip_bench::{banner, emit_report, mark, table, Report};
use lip_core::Pattern;
use lip_graph::{generate, Netlist, NodeId};
use lip_sim::{measure_batch, LanePatterns, SettleProgram, SkeletonSystem, LANES};

const CYCLES: u64 = 4096;
const REPS: usize = 3;
const CLAIMED_SPEEDUP: f64 = 8.0;

/// Per-lane stall ramp: lane `l` stalls every sink `l/64` of the time,
/// so the sweep spans free-running to almost-starved back-pressure.
fn sweep_patterns(prog: &SettleProgram) -> LanePatterns {
    let mut pats = LanePatterns::broadcast(prog);
    for lane in 0..LANES {
        for j in 0..prog.sink_count() {
            pats.set_sink(
                j,
                lane,
                Pattern::Random {
                    num: lane as u32,
                    denom: LANES as u32,
                    seed: 0xB0 ^ lane as u64,
                },
            );
        }
    }
    pats
}

/// fig1 plus the first few valid random-family netlists.
fn corpus() -> Vec<(String, Netlist)> {
    let mut tops = vec![
        ("fig1".to_string(), generate::fig1().netlist),
        (
            "ring4x4_full".to_string(),
            generate::ring(4, 4, lip_core::RelayKind::Full).netlist,
        ),
    ];
    let mut seed = 0u64;
    while tops.len() < 5 {
        let (family, netlist) = generate::random_family(seed);
        // At least two shells, so settle work (the bit-parallel part)
        // dominates per-lane environment-pattern evaluation.
        if netlist.validate().is_ok() && netlist.shells().len() >= 2 {
            tops.push((format!("rand{seed}_{family:?}"), netlist));
        }
        seed += 1;
    }
    tops
}

/// The scalar baseline: one [`SkeletonSystem`] per lane, each over the
/// netlist rebuilt with that lane's environment patterns.
fn scalar_sweep(
    netlist: &Netlist,
    pats: &LanePatterns,
    sources: &[NodeId],
    sinks: &[NodeId],
) -> Vec<Vec<(u64, u64)>> {
    let mut counts = vec![vec![(0u64, 0u64); LANES]; sinks.len()];
    // `lane` indexes the *inner* axis of `counts[j][lane]`, which
    // needless_range_loop misreads as iterable.
    #[allow(clippy::needless_range_loop)]
    for lane in 0..LANES {
        let mut reference = netlist.clone();
        for (i, &s) in sources.iter().enumerate() {
            assert!(reference.set_source_pattern(s, pats.source_pattern(i, lane).clone()));
        }
        for (j, &s) in sinks.iter().enumerate() {
            assert!(reference.set_sink_pattern(s, pats.sink_pattern(j, lane).clone()));
        }
        let mut sys = SkeletonSystem::new(&reference).expect("elaborates");
        sys.run(CYCLES);
        for (j, &s) in sinks.iter().enumerate() {
            counts[j][lane] = sys.sink_counts(s).expect("sink counts");
        }
    }
    counts
}

struct Row {
    name: String,
    shells: usize,
    scalar_rate: f64,
    batch_rate: f64,
    speedup: f64,
}

fn main() {
    banner(
        "EXP-B1",
        "bit-parallel batched skeleton sweep",
        "one 64-lane batch run is >= 8x faster than 64 scalar runs, bit-identically",
    );

    let mut rows = Vec::new();
    for (name, netlist) in corpus() {
        let prog = Arc::new(SettleProgram::compile(&netlist).expect("compiles"));
        let pats = sweep_patterns(&prog);
        let sources = netlist.sources();
        let sinks = netlist.sinks();

        // Bit-identity first: the speedup is worthless if the lanes drift.
        let batch = measure_batch(&netlist, &pats, CYCLES).expect("batch sweep");
        let scalar = scalar_sweep(&netlist, &pats, &sources, &sinks);
        assert_eq!(
            batch.counts, scalar,
            "{name}: batch sink counts diverge from scalar runs"
        );

        // Lane-cycles per second, best of REPS; construction included on
        // both sides since a sweep pays it either way.
        let mut t_scalar = f64::INFINITY;
        let mut t_batch = f64::INFINITY;
        for _ in 0..REPS {
            let t0 = Instant::now();
            std::hint::black_box(scalar_sweep(&netlist, &pats, &sources, &sinks));
            t_scalar = t_scalar.min(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            std::hint::black_box(measure_batch(&netlist, &pats, CYCLES).expect("batch sweep"));
            t_batch = t_batch.min(t0.elapsed().as_secs_f64());
        }
        let lane_cycles = (LANES as u64 * CYCLES) as f64;
        rows.push(Row {
            name,
            shells: netlist.shells().len(),
            scalar_rate: lane_cycles / t_scalar,
            batch_rate: lane_cycles / t_batch,
            speedup: t_scalar / t_batch,
        });
    }

    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.shells.to_string(),
                format!("{:.3e}", r.scalar_rate),
                format!("{:.3e}", r.batch_rate),
                format!("{:.1}x", r.speedup),
                mark(r.speedup >= CLAIMED_SPEEDUP).into(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "topology",
                "shells",
                "scalar lane-cyc/s",
                "batch lane-cyc/s",
                "speedup",
                ">=8x"
            ],
            &printable,
        )
    );
    println!("(counts bit-identical across all {LANES} lanes on every topology)");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"schema_version\": {},\n",
        lip_obs::SCHEMA_VERSION
    ));
    json.push_str("  \"experiment\": \"exp_batch_sweep\",\n");
    json.push_str(&format!("  \"lanes\": {LANES},\n"));
    json.push_str(&format!("  \"cycles\": {CYCLES},\n"));
    json.push_str(&format!("  \"claimed_speedup\": {CLAIMED_SPEEDUP},\n"));
    json.push_str("  \"topologies\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"shells\": {}, \"scalar_lane_cycles_per_sec\": {:.1}, \
             \"batch_lane_cycles_per_sec\": {:.1}, \"speedup\": {:.2}}}{comma}\n",
            r.name, r.shells, r.scalar_rate, r.batch_rate, r.speedup
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_skeleton.json", json).expect("write BENCH_skeleton.json");
    println!("wrote BENCH_skeleton.json");

    let mut report = Report::new("exp_batch_sweep");
    report
        .push_int("lanes", LANES as u64)
        .push_int("cycles", CYCLES)
        .push_f64("claimed_speedup", CLAIMED_SPEEDUP)
        .push_f64(
            "min_speedup",
            rows.iter().map(|r| r.speedup).fold(f64::INFINITY, f64::min),
        )
        .push_int("topologies", rows.len() as u64)
        .push_bool("ok", rows.iter().all(|r| r.speedup >= CLAIMED_SPEEDUP));
    emit_report(&report);

    if let Some(r) = rows.iter().find(|r| r.speedup < CLAIMED_SPEEDUP) {
        eprintln!(
            "speedup below {CLAIMED_SPEEDUP}x on {}: {:.1}x",
            r.name, r.speedup
        );
        std::process::exit(1);
    }
}
