//! EXP-B1 — many-lane bit-parallel batched skeleton sweep.
//!
//! The paper's cost argument ("the simulation cost is absolutely
//! negligible") invites sweeping *many* stall scenarios, not just one.
//! The batched engine packs independent scenarios into the bits of a
//! lane word — `u64` up to `[u64; 16]` (64 to 1024 lanes) — and settles
//! all of them per pass with word-wide boolean operations over the
//! streaming op tape. This experiment runs the throughput sweep at
//! every supported width against a scalar [`SkeletonSystem`] baseline,
//! verifies the sink counts are bit-identical lane for lane across all
//! widths, and persists the measured per-width rates to
//! `BENCH_skeleton.json` so the perf trajectory is tracked across PRs.
//!
//! Gates: the classic 64-lane engine must stay `>= 8x` scalar (the
//! historical floor), and the widest word must reach `>= 100x`.

use std::sync::Arc;
use std::time::Instant;

use lip_bench::{banner, emit_report, mark, report_dir, table, Report};
use lip_core::Pattern;
use lip_graph::{generate, Netlist, NodeId};
use lip_obs::{ProgressSink, ProgressSnapshot, PromFileProgress};
use lip_sim::{
    dispatch_lane_width, measure_batch_wide, BatchMeasurement, LanePatterns, LaneWidthVisitor,
    LaneWord, SettleProgram, SkeletonSystem, LANES, LANE_WIDTHS,
};

const CYCLES: u64 = 4096;
const REPS: usize = 3;
/// W = 1 floor: the historical 64-lane gate.
const CLAIMED_SPEEDUP: f64 = 8.0;
/// Widest-word gate: 1024 lanes must beat scalar by two orders.
const WIDE_SPEEDUP: f64 = 100.0;

/// Duty-ramp stall pattern for base lane `b`: a period-64 cyclic word
/// asserting stop on exactly `b` of every 64 cycles, spread evenly
/// (Bresenham), so the sweep spans free-running to almost-starved
/// back-pressure. Periodic with lcm 64 across all lanes, so the
/// engine's compiled pattern tables stay in play at every width.
fn duty_pattern(base: usize) -> Pattern {
    let bits: Vec<bool> = (0..64)
        .map(|c| (c + 1) * base / 64 > c * base / 64)
        .collect();
    Pattern::Cyclic(bits)
}

/// Per-lane stall ramp at `lanes` lanes: lane `l` replicates base lane
/// `l % 64`, so every width runs *exact copies* of the 64 base
/// scenarios and cross-width equivalence is `counts[l] ==
/// counts64[l % 64]`, bit for bit.
fn sweep_patterns(prog: &SettleProgram, lanes: usize) -> LanePatterns {
    let mut pats = LanePatterns::broadcast_wide(prog, lanes);
    for lane in 0..lanes {
        for j in 0..prog.sink_count() {
            pats.set_sink(j, lane, duty_pattern(lane % LANES));
        }
    }
    pats
}

/// fig1 plus the first few valid random-family netlists.
fn corpus() -> Vec<(String, Netlist)> {
    let mut tops = vec![
        ("fig1".to_string(), generate::fig1().netlist),
        (
            "ring4x4_full".to_string(),
            generate::ring(4, 4, lip_core::RelayKind::Full).netlist,
        ),
    ];
    let mut seed = 0u64;
    while tops.len() < 5 {
        let (family, netlist) = generate::random_family(seed);
        // At least two shells, so settle work (the bit-parallel part)
        // dominates per-lane environment-pattern evaluation.
        if netlist.validate().is_ok() && netlist.shells().len() >= 2 {
            tops.push((format!("rand{seed}_{family:?}"), netlist));
        }
        seed += 1;
    }
    tops
}

/// The scalar baseline: one [`SkeletonSystem`] per base lane, each over
/// the netlist rebuilt with that lane's environment patterns.
fn scalar_sweep(
    netlist: &Netlist,
    pats: &LanePatterns,
    sources: &[NodeId],
    sinks: &[NodeId],
) -> Vec<Vec<(u64, u64)>> {
    let mut counts = vec![vec![(0u64, 0u64); LANES]; sinks.len()];
    // `lane` indexes the *inner* axis of `counts[j][lane]`, which
    // needless_range_loop misreads as iterable.
    #[allow(clippy::needless_range_loop)]
    for lane in 0..LANES {
        let mut reference = netlist.clone();
        for (i, &s) in sources.iter().enumerate() {
            assert!(reference.set_source_pattern(s, pats.source_pattern(i, lane).clone()));
        }
        for (j, &s) in sinks.iter().enumerate() {
            assert!(reference.set_sink_pattern(s, pats.sink_pattern(j, lane).clone()));
        }
        let mut sys = SkeletonSystem::new(&reference).expect("elaborates");
        sys.run(CYCLES);
        for (j, &s) in sinks.iter().enumerate() {
            counts[j][lane] = sys.sink_counts(s).expect("sink counts");
        }
    }
    counts
}

/// Run the batch sweep at word shape `W` and time it: construction
/// included on both sides since a sweep pays it either way.
struct WidthRun<'a> {
    netlist: &'a Netlist,
    pats: &'a LanePatterns,
}

impl LaneWidthVisitor for WidthRun<'_> {
    type Out = (BatchMeasurement, f64);

    fn visit<W: LaneWord>(&mut self) -> Self::Out {
        let m = measure_batch_wide::<W>(self.netlist, self.pats, CYCLES).expect("batch sweep");
        let mut t = f64::INFINITY;
        for _ in 0..REPS {
            let t0 = Instant::now();
            std::hint::black_box(
                measure_batch_wide::<W>(self.netlist, self.pats, CYCLES).expect("batch sweep"),
            );
            t = t.min(t0.elapsed().as_secs_f64());
        }
        (m, t)
    }
}

struct WidthRow {
    lanes: usize,
    rate: f64,
    speedup: f64,
}

struct Row {
    name: String,
    shells: usize,
    scalar_rate: f64,
    widths: Vec<WidthRow>,
}

impl Row {
    /// Speedup of the width carrying `lanes` lanes.
    fn speedup_at(&self, lanes: usize) -> f64 {
        self.widths
            .iter()
            .find(|w| w.lanes == lanes)
            .expect("width measured")
            .speedup
    }
}

fn main() {
    banner(
        "EXP-B1",
        "many-lane bit-parallel batched skeleton sweep",
        "64-lane batch >= 8x scalar; 1024-lane batch >= 100x; all widths bit-identical",
    );

    let widest = *LANE_WIDTHS.last().expect("widths non-empty");
    // Live telemetry: one snapshot per completed (topology, width) unit,
    // published to the Prometheus exposition the `lip_top` bin renders.
    let mut progress = PromFileProgress::new(report_dir().join("progress.prom"));
    let sweep_started = Instant::now();
    let mut rows = Vec::new();
    for (name, netlist) in corpus() {
        let prog = Arc::new(SettleProgram::compile(&netlist).expect("compiles"));
        let sources = netlist.sources();
        let sinks = netlist.sinks();
        let base_pats = sweep_patterns(&prog, LANES);

        // Bit-identity first: the speedup is worthless if lanes drift.
        // The 64-lane engine is checked against 64 scalar runs, then
        // every wider word is checked lane-for-lane against the 64-lane
        // counts (lane `l` replicates base scenario `l % 64`).
        let scalar = scalar_sweep(&netlist, &base_pats, &sources, &sinks);

        let mut t_scalar = f64::INFINITY;
        for _ in 0..REPS {
            let t0 = Instant::now();
            std::hint::black_box(scalar_sweep(&netlist, &base_pats, &sources, &sinks));
            t_scalar = t_scalar.min(t0.elapsed().as_secs_f64());
        }
        let scalar_rate = (LANES as u64 * CYCLES) as f64 / t_scalar;

        let mut widths = Vec::new();
        let mut counts64: Option<Vec<Vec<(u64, u64)>>> = None;
        for lanes in LANE_WIDTHS {
            let pats = sweep_patterns(&prog, lanes);
            let (m, t) = dispatch_lane_width(
                lanes,
                &mut WidthRun {
                    netlist: &netlist,
                    pats: &pats,
                },
            );
            assert_eq!(m.lanes, lanes);
            if lanes == LANES {
                assert_eq!(
                    m.counts, scalar,
                    "{name}: 64-lane batch sink counts diverge from scalar runs"
                );
                counts64 = Some(m.counts.clone());
            } else {
                let base = counts64.as_ref().expect("64-lane sweep runs first");
                for (j, per_lane) in m.counts.iter().enumerate() {
                    for (l, &c) in per_lane.iter().enumerate() {
                        assert_eq!(
                            c,
                            base[j][l % LANES],
                            "{name}: width {lanes} lane {l} diverges from base lane {}",
                            l % LANES
                        );
                    }
                }
            }
            let rate = (lanes as u64 * CYCLES) as f64 / t;
            progress.publish(&ProgressSnapshot {
                experiment: "exp_batch_sweep".to_string(),
                topology: format!("{name}@{lanes}L"),
                lanes: lanes as u64,
                lanes_converged: lanes as u64,
                cycles_executed: CYCLES,
                cycles_per_sec: rate,
                cache_hits: 0,
                cache_misses: 0,
                elapsed_ns: u64::try_from(sweep_started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            });
            widths.push(WidthRow {
                lanes,
                rate,
                speedup: rate / scalar_rate,
            });
        }
        rows.push(Row {
            name,
            shells: netlist.shells().len(),
            scalar_rate,
            widths,
        });
    }
    if let Some(e) = progress.take_error() {
        eprintln!("warning: progress exposition stopped updating: {e}");
    }

    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![
                r.name.clone(),
                r.shells.to_string(),
                format!("{:.3e}", r.scalar_rate),
            ];
            for w in &r.widths {
                row.push(format!("{:.1}x", w.speedup));
            }
            row.push(mark(r.speedup_at(LANES) >= CLAIMED_SPEEDUP).into());
            row.push(mark(r.speedup_at(widest) >= WIDE_SPEEDUP).into());
            row
        })
        .collect();
    let headers: Vec<String> = ["topology", "shells", "scalar lane-cyc/s"]
        .iter()
        .map(|s| (*s).to_string())
        .chain(LANE_WIDTHS.iter().map(|l| format!("{l}L")))
        .chain([">=8x @64".to_string(), ">=100x @widest".to_string()])
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("{}", table(&header_refs, &printable));
    println!("(counts bit-identical lane-for-lane across all widths on every topology)");

    let min_at = |lanes: usize| {
        rows.iter()
            .map(|r| r.speedup_at(lanes))
            .fold(f64::INFINITY, f64::min)
    };

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"schema_version\": {},\n",
        lip_obs::SCHEMA_VERSION
    ));
    json.push_str("  \"experiment\": \"exp_batch_sweep\",\n");
    json.push_str(&format!("  \"lanes\": {LANES},\n"));
    json.push_str(&format!("  \"cycles\": {CYCLES},\n"));
    json.push_str(&format!("  \"claimed_speedup\": {CLAIMED_SPEEDUP},\n"));
    json.push_str(&format!("  \"wide_speedup\": {WIDE_SPEEDUP},\n"));
    json.push_str("  \"lane_widths\": [\n");
    for (i, lanes) in LANE_WIDTHS.iter().enumerate() {
        let comma = if i + 1 < LANE_WIDTHS.len() { "," } else { "" };
        let claimed = if *lanes == LANES {
            CLAIMED_SPEEDUP
        } else if *lanes == widest {
            WIDE_SPEEDUP
        } else {
            0.0
        };
        json.push_str(&format!(
            "    {{\"lanes\": {lanes}, \"words\": {}, \"min_speedup\": {:.2}, \
             \"claimed_speedup\": {claimed}, \"ok\": {}}}{comma}\n",
            lanes / 64,
            min_at(*lanes),
            min_at(*lanes) >= claimed
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"topologies\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let widths: Vec<String> = r
            .widths
            .iter()
            .map(|w| {
                format!(
                    "{{\"lanes\": {}, \"batch_lane_cycles_per_sec\": {:.1}, \"speedup\": {:.2}}}",
                    w.lanes, w.rate, w.speedup
                )
            })
            .collect();
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"shells\": {}, \"scalar_lane_cycles_per_sec\": {:.1}, \
             \"batch_lane_cycles_per_sec\": {:.1}, \"speedup\": {:.2}, \"widths\": [{}]}}{comma}\n",
            r.name,
            r.shells,
            r.scalar_rate,
            r.widths[0].rate,
            r.widths[0].speedup,
            widths.join(", ")
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_skeleton.json", json).expect("write BENCH_skeleton.json");
    println!("wrote BENCH_skeleton.json");

    let ok = min_at(LANES) >= CLAIMED_SPEEDUP && min_at(widest) >= WIDE_SPEEDUP;
    let mut report = Report::new("exp_batch_sweep");
    report
        .push_int("lanes", LANES as u64)
        .push_int("widest_lanes", widest as u64)
        .push_int("cycles", CYCLES)
        .push_f64("claimed_speedup", CLAIMED_SPEEDUP)
        .push_f64("wide_speedup", WIDE_SPEEDUP)
        .push_f64("min_speedup", min_at(LANES))
        .push_f64("widest_min_speedup", min_at(widest))
        .push_int("topologies", rows.len() as u64)
        .push_bool("ok", ok);
    emit_report(&report);

    if min_at(LANES) < CLAIMED_SPEEDUP {
        eprintln!(
            "64-lane speedup below {CLAIMED_SPEEDUP}x: {:.1}x",
            min_at(LANES)
        );
        std::process::exit(1);
    }
    if min_at(widest) < WIDE_SPEEDUP {
        eprintln!(
            "{widest}-lane speedup below {WIDE_SPEEDUP}x: {:.1}x",
            min_at(widest)
        );
        std::process::exit(1);
    }
}
