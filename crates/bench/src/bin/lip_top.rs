//! `lip-top` — live text dashboard over the sweep progress exposition.
//!
//! The long-running experiment bins (`exp_runtime_obs`,
//! `exp_batch_sweep`, `exp_parallel_sweep`) publish
//! [`ProgressSnapshot`](lip_obs::ProgressSnapshot)s to a
//! Prometheus-style text file (`progress.prom` in the report
//! directory, atomically rewritten on every publish). This bin renders
//! that file as a per-`(experiment, topology)` table — a `top`-style
//! view of an in-flight sweep.
//!
//! Usage: `lip_top [--file PATH] [--watch]`. Without `--watch` it
//! prints one table and exits; with it, the table refreshes twice a
//! second until interrupted, and a `Δcycles` column shows how far each
//! unit advanced since the previous refresh (`-` on first sight — a
//! stalled unit reads `+0` at a glance). A missing file is not an
//! error — it just means nothing has published yet.

use std::path::PathBuf;

use lip_bench::{report_dir, table};

/// One parsed `(experiment, topology)` row of the exposition.
#[derive(Debug, Default, Clone)]
struct Unit {
    experiment: String,
    topology: String,
    lanes: f64,
    converged: f64,
    cycles: f64,
    cycles_per_sec: f64,
    cache_hits: f64,
    cache_misses: f64,
    elapsed_s: f64,
}

/// Parse one exposition line: `name{experiment="…",topology="…"} value`.
fn parse_line(line: &str) -> Option<(&str, String, String, f64)> {
    let line = line.strip_prefix("lip_")?;
    let brace = line.find('{')?;
    let close = line.find('}')?;
    let metric = &line[..brace];
    let labels = &line[brace + 1..close];
    let value: f64 = line[close + 1..].trim().parse().ok()?;
    let label = |key: &str| -> Option<String> {
        let pat = format!("{key}=\"");
        let start = labels.find(&pat)? + pat.len();
        let end = labels[start..].find('"')? + start;
        Some(labels[start..end].to_string())
    };
    Some((metric, label("experiment")?, label("topology")?, value))
}

fn parse(text: &str) -> Vec<Unit> {
    let mut units: Vec<Unit> = Vec::new();
    for line in text.lines() {
        let Some((metric, experiment, topology, value)) = parse_line(line) else {
            continue;
        };
        let unit = match units
            .iter_mut()
            .find(|u| u.experiment == experiment && u.topology == topology)
        {
            Some(u) => u,
            None => {
                units.push(Unit {
                    experiment,
                    topology,
                    ..Unit::default()
                });
                units.last_mut().expect("just pushed")
            }
        };
        match metric {
            "lanes" => unit.lanes = value,
            "lanes_converged" => unit.converged = value,
            "cycles_executed" => unit.cycles = value,
            "cycles_per_sec" => unit.cycles_per_sec = value,
            "cache_hits" => unit.cache_hits = value,
            "cache_misses" => unit.cache_misses = value,
            "elapsed_seconds" => unit.elapsed_s = value,
            _ => {}
        }
    }
    units
}

/// Cycles each current unit advanced since the previous refresh,
/// keyed by `(experiment, topology)`; `None` for units not seen
/// before (first refresh, or a new unit appearing mid-watch).
fn deltas(prev: &[Unit], cur: &[Unit]) -> Vec<Option<f64>> {
    cur.iter()
        .map(|u| {
            prev.iter()
                .find(|p| p.experiment == u.experiment && p.topology == u.topology)
                .map(|p| u.cycles - p.cycles)
        })
        .collect()
}

fn render(units: &[Unit], deltas: &[Option<f64>]) -> String {
    let rows: Vec<Vec<String>> = units
        .iter()
        .zip(deltas)
        .map(|(u, d)| {
            vec![
                u.experiment.clone(),
                u.topology.clone(),
                format!("{}/{}", u.converged, u.lanes),
                format!("{}", u.cycles),
                d.map_or_else(|| "-".to_string(), |d| format!("{d:+}")),
                format!("{:.3e}", u.cycles_per_sec),
                format!("{}/{}", u.cache_hits, u.cache_misses),
                format!("{:.2}s", u.elapsed_s),
            ]
        })
        .collect();
    table(
        &[
            "experiment",
            "topology",
            "lanes conv",
            "cycles",
            "Δcycles",
            "cyc/s",
            "cache h/m",
            "elapsed",
        ],
        &rows,
    )
}

fn main() {
    let mut path: Option<PathBuf> = None;
    let mut watch = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--file" => path = Some(PathBuf::from(args.next().expect("--file takes a path"))),
            "--watch" => watch = true,
            other => {
                eprintln!("usage: lip_top [--file PATH] [--watch] (unknown arg {other:?})");
                std::process::exit(2);
            }
        }
    }
    let path = path.unwrap_or_else(|| report_dir().join("progress.prom"));

    let mut prev: Vec<Unit> = Vec::new();
    loop {
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let units = parse(&text);
                let ds = deltas(&prev, &units);
                if watch {
                    // ANSI clear + home, so the refresh reads like top.
                    print!("\x1b[2J\x1b[H");
                }
                println!("lip-top — {} unit(s) from {}", units.len(), path.display());
                print!("{}", render(&units, &ds));
                prev = units;
            }
            Err(_) => {
                println!(
                    "lip-top: nothing published yet at {} (run an exp_* bin first)",
                    path.display()
                );
            }
        }
        if !watch {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(500));
    }
}

#[cfg(test)]
mod tests {
    use super::{deltas, parse, render};
    use lip_obs::{MemoryProgress, ProgressSink, ProgressSnapshot};

    fn snap(topology: &str, cycles: u64) -> ProgressSnapshot {
        ProgressSnapshot {
            experiment: "exp_test".to_string(),
            topology: topology.to_string(),
            lanes: 64,
            lanes_converged: 32,
            cycles_executed: cycles,
            cycles_per_sec: 1.0e6,
            cache_hits: 3,
            cache_misses: 1,
            elapsed_ns: 2_000_000_000,
        }
    }

    #[test]
    fn delta_column_tracks_cycles_between_published_snapshots() {
        // Two refreshes of the same unit published through the
        // in-memory sink, exactly as a sweep publishes to the prom
        // file lip_top tails.
        let mut sink = MemoryProgress::new();
        sink.publish(&snap("fig1", 1024));
        sink.publish(&snap("fig1", 4096));

        let first = parse(&sink.snaps[0].prometheus_text());
        let second = parse(&sink.snaps[1].prometheus_text());
        assert_eq!(first.len(), 1);
        assert_eq!(second[0].cycles, 4096.0);

        // First refresh has no history; second shows the advance.
        assert_eq!(deltas(&[], &first), vec![None]);
        let ds = deltas(&first, &second);
        assert_eq!(ds, vec![Some(3072.0)]);

        let out = render(&second, &ds);
        assert!(out.contains("+3072"), "delta column renders signed: {out}");
        let cold = render(&first, &deltas(&[], &first));
        assert!(
            cold.lines().nth(2).is_some_and(|r| r.contains(" - ")),
            "unseen units render '-': {cold}"
        );
    }

    #[test]
    fn deltas_pair_units_by_experiment_and_topology() {
        let mut sink = MemoryProgress::new();
        sink.publish(&snap("fig1", 100));
        sink.publish(&snap("ring3x2", 700));
        let prev_text: String = sink
            .snaps
            .iter()
            .map(ProgressSnapshot::prometheus_text)
            .collect();
        let prev = parse(&prev_text);

        // Next refresh: ring advanced, fig1 gone, a new unit appeared.
        let mut next_sink = MemoryProgress::new();
        next_sink.publish(&snap("ring3x2", 1200));
        next_sink.publish(&snap("tree2x2", 50));
        let cur_text: String = next_sink
            .snaps
            .iter()
            .map(ProgressSnapshot::prometheus_text)
            .collect();
        let cur = parse(&cur_text);

        assert_eq!(deltas(&prev, &cur), vec![Some(500.0), None]);
    }
}
