//! `lip-top` — live text dashboard over the sweep progress exposition.
//!
//! The long-running experiment bins (`exp_runtime_obs`,
//! `exp_batch_sweep`, `exp_parallel_sweep`) publish
//! [`ProgressSnapshot`](lip_obs::ProgressSnapshot)s to a
//! Prometheus-style text file (`progress.prom` in the report
//! directory, atomically rewritten on every publish). This bin renders
//! that file as a per-`(experiment, topology)` table — a `top`-style
//! view of an in-flight sweep.
//!
//! Usage: `lip_top [--file PATH] [--watch]`. Without `--watch` it
//! prints one table and exits; with it, the table refreshes twice a
//! second until interrupted. A missing file is not an error — it just
//! means nothing has published yet.

use std::path::PathBuf;

use lip_bench::{report_dir, table};

/// One parsed `(experiment, topology)` row of the exposition.
#[derive(Debug, Default, Clone)]
struct Unit {
    experiment: String,
    topology: String,
    lanes: f64,
    converged: f64,
    cycles: f64,
    cycles_per_sec: f64,
    cache_hits: f64,
    cache_misses: f64,
    elapsed_s: f64,
}

/// Parse one exposition line: `name{experiment="…",topology="…"} value`.
fn parse_line(line: &str) -> Option<(&str, String, String, f64)> {
    let line = line.strip_prefix("lip_")?;
    let brace = line.find('{')?;
    let close = line.find('}')?;
    let metric = &line[..brace];
    let labels = &line[brace + 1..close];
    let value: f64 = line[close + 1..].trim().parse().ok()?;
    let label = |key: &str| -> Option<String> {
        let pat = format!("{key}=\"");
        let start = labels.find(&pat)? + pat.len();
        let end = labels[start..].find('"')? + start;
        Some(labels[start..end].to_string())
    };
    Some((metric, label("experiment")?, label("topology")?, value))
}

fn parse(text: &str) -> Vec<Unit> {
    let mut units: Vec<Unit> = Vec::new();
    for line in text.lines() {
        let Some((metric, experiment, topology, value)) = parse_line(line) else {
            continue;
        };
        let unit = match units
            .iter_mut()
            .find(|u| u.experiment == experiment && u.topology == topology)
        {
            Some(u) => u,
            None => {
                units.push(Unit {
                    experiment,
                    topology,
                    ..Unit::default()
                });
                units.last_mut().expect("just pushed")
            }
        };
        match metric {
            "lanes" => unit.lanes = value,
            "lanes_converged" => unit.converged = value,
            "cycles_executed" => unit.cycles = value,
            "cycles_per_sec" => unit.cycles_per_sec = value,
            "cache_hits" => unit.cache_hits = value,
            "cache_misses" => unit.cache_misses = value,
            "elapsed_seconds" => unit.elapsed_s = value,
            _ => {}
        }
    }
    units
}

fn render(units: &[Unit]) -> String {
    let rows: Vec<Vec<String>> = units
        .iter()
        .map(|u| {
            vec![
                u.experiment.clone(),
                u.topology.clone(),
                format!("{}/{}", u.converged, u.lanes),
                format!("{}", u.cycles),
                format!("{:.3e}", u.cycles_per_sec),
                format!("{}/{}", u.cache_hits, u.cache_misses),
                format!("{:.2}s", u.elapsed_s),
            ]
        })
        .collect();
    table(
        &[
            "experiment",
            "topology",
            "lanes conv",
            "cycles",
            "cyc/s",
            "cache h/m",
            "elapsed",
        ],
        &rows,
    )
}

fn main() {
    let mut path: Option<PathBuf> = None;
    let mut watch = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--file" => path = Some(PathBuf::from(args.next().expect("--file takes a path"))),
            "--watch" => watch = true,
            other => {
                eprintln!("usage: lip_top [--file PATH] [--watch] (unknown arg {other:?})");
                std::process::exit(2);
            }
        }
    }
    let path = path.unwrap_or_else(|| report_dir().join("progress.prom"));

    loop {
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let units = parse(&text);
                if watch {
                    // ANSI clear + home, so the refresh reads like top.
                    print!("\x1b[2J\x1b[H");
                }
                println!("lip-top — {} unit(s) from {}", units.len(), path.display());
                print!("{}", render(&units));
            }
            Err(_) => {
                println!(
                    "lip-top: nothing published yet at {} (run an exp_* bin first)",
                    path.display()
                );
            }
        }
        if !watch {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(500));
    }
}
