//! EXP-T6 — path equalization: "to get the maximum T from a feedforward
//! arrangement, it is necessary to insert enough spare relay stations to
//! make all converging paths of the same length."

use lip_analysis::equalize;
use lip_bench::{banner, emit_report, mark, table, Report};
use lip_graph::generate;
use lip_sim::measure;

fn main() {
    banner(
        "EXP-T6",
        "path equalization on unbalanced feed-forward systems",
        "inserting spare relay stations restores T = 1",
    );

    let mut rows = Vec::new();
    let mut restored = 0u64;
    let mut inserted_total = 0u64;
    for (r1, r2, s) in [
        (1usize, 1usize, 1usize),
        (2, 1, 1),
        (2, 2, 1),
        (3, 1, 1),
        (3, 2, 0),
        (0, 3, 1),
        (1, 1, 3), // reversed imbalance: the "short" branch is longer
    ] {
        let mut f = generate::fork_join(r1, r2, s);
        let before = measure(&f.netlist)
            .expect("measures")
            .system_throughput()
            .expect("one sink");
        let report = equalize(&mut f.netlist).expect("feed-forward");
        f.netlist.validate().expect("still legal");
        let after = measure(&f.netlist)
            .expect("measures")
            .system_throughput()
            .expect("one sink");
        restored += u64::from(after.to_string() == "1/1");
        inserted_total += report.total_inserted() as u64;
        rows.push(vec![
            format!("fork_join({r1},{r2},{s})"),
            before.to_string(),
            report.total_inserted().to_string(),
            after.to_string(),
            mark(after.to_string() == "1/1").into(),
        ]);
    }
    println!(
        "{}",
        table(
            &["system", "T before", "spares inserted", "T after", "check"],
            &rows
        )
    );
    println!("every unbalanced system reaches T = 1 after equalization");

    let mut json = Report::new("exp_equalization");
    json.push_int("systems", rows.len() as u64)
        .push_int("restored_to_unit_throughput", restored)
        .push_int("spares_inserted_total", inserted_total)
        .push_bool("ok", restored == rows.len() as u64);
    emit_report(&json);
}
