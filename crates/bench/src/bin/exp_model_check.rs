//! EXP-M1 — the exact model checker (`lip-mc`) against every other
//! oracle in the workspace: its statically derived throughput equals
//! the batched simulator's measured steady state AND the marked-graph
//! prediction as exact `Ratio` equalities; its deadlock verdict matches
//! the simulated liveness oracle on pristine and sabotaged
//! environments; every deadlock counterexample replays on the real
//! `SkeletonSystem` into the proved stuck state; and the adversarial
//! BFS agrees state-for-state with `lip-verify`'s explorer.
//!
//! Writes `BENCH_check.json` (schema under `EXPERIMENTS.md` EXP-M1):
//! the agreement matrix, state-space telemetry (states/sec, peak arena
//! bytes) and the `gate_skipped` marker when a corpus entry exceeded
//! the state budget.

use std::time::Instant;

use lip_bench::{banner, emit_report, mark, table, Report};
use lip_core::RelayKind;
use lip_graph::{generate, Netlist};
use lip_mc::{check_adversarial, check_declared, confirm_stuck, McConfig, McError, Verdict};
use lip_sim::measure::check_liveness;
use lip_sim::{measure_batch_periodic, LanePatterns, Ratio, SettleProgram};
use lip_verify::explore_system;

/// Lane-0 steady state from the batched periodic simulator.
fn batch_measured(netlist: &Netlist) -> Option<Ratio> {
    let prog = SettleProgram::compile(netlist).ok()?;
    let pats = LanePatterns::broadcast(&prog);
    let m = measure_batch_periodic(netlist, &pats, 8192).ok()?;
    m.periodicity[0].as_ref()?;
    m.system_throughput(0)
}

/// Rewrite the first pattern-free `source` statement to void on every
/// cycle — a statically dead environment — and reparse.
fn kill_first_source(netlist: &Netlist) -> Option<Netlist> {
    let text = lip_graph::write_netlist(netlist);
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    let line = lines
        .iter_mut()
        .find(|l| l.starts_with("source ") && !l.contains("voids="))?;
    line.push_str(" voids=every:1:0");
    let (mutated, _) = lip_graph::parse_netlist(&lines.join("\n")).ok()?;
    Some(mutated)
}

/// Same, stalling the first sink with a permanent stop.
fn kill_first_sink(netlist: &Netlist) -> Option<Netlist> {
    let text = lip_graph::write_netlist(netlist);
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    let line = lines
        .iter_mut()
        .find(|l| l.starts_with("sink ") && !l.contains("stops="))?;
    line.push_str(" stops=every:1:0");
    let (mutated, _) = lip_graph::parse_netlist(&lines.join("\n")).ok()?;
    Some(mutated)
}

/// Every shipped `.lid` design, parsed.
fn shipped_designs() -> Vec<(String, Netlist)> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../designs");
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return out;
    };
    let mut paths: Vec<_> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "lid"))
        .collect();
    paths.sort();
    for path in paths {
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue;
        };
        let Ok((netlist, _)) = lip_graph::parse_netlist(&src) else {
            continue;
        };
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        out.push((format!("designs/{name}"), netlist));
    }
    out
}

/// Mutable tallies threaded through every corpus entry.
#[derive(Default)]
struct Tally {
    checked: u64,
    skipped_aperiodic: u64,
    skipped_cap: u64,
    states_total: u64,
    peak_arena_bytes: usize,
    mc_seconds: f64,
    deadlock_agree: u64,
    deadlock_total: u64,
    tp_sim_agree: u64,
    tp_sim_total: u64,
    tp_static_agree: u64,
    tp_static_total: u64,
    cex_replayed: u64,
    cex_total: u64,
    bounds_ok: u64,
    bounds_total: u64,
}

/// Run every declared-mode check on one corpus entry and fold the
/// results into `tally`; returns a human row when the proof ran.
fn check_entry(name: &str, netlist: &Netlist, tally: &mut Tally) -> Option<Vec<String>> {
    if netlist.validate().is_err() {
        return None;
    }
    let cfg = McConfig::default();
    let t0 = Instant::now();
    let proof = match check_declared(netlist, &cfg) {
        Ok(p) => p,
        Err(McError::Aperiodic) => {
            tally.skipped_aperiodic += 1;
            return None;
        }
        Err(McError::StateCap { .. }) => {
            tally.skipped_cap += 1;
            return None;
        }
        Err(McError::Netlist(_)) => return None,
    };
    tally.mc_seconds += t0.elapsed().as_secs_f64();
    tally.checked += 1;
    tally.states_total += proof.states as u64;
    tally.peak_arena_bytes = tally.peak_arena_bytes.max(proof.peak_arena_bytes);

    // Deadlock verdict vs the simulated liveness oracle.
    let oracle = check_liveness(netlist, 20_000, 5_000).expect("valid netlist");
    tally.deadlock_total += 1;
    let dead_agree = proof.is_live() == oracle.is_live();
    tally.deadlock_agree += u64::from(dead_agree);

    // Exact throughput: proof == simulator == marked-graph prediction.
    let proved = proof.system_throughput();
    let mut tp_cell = "-".to_owned();
    if let (Some(proved), Some(measured)) = (proved, batch_measured(netlist)) {
        tally.tp_sim_total += 1;
        tally.tp_sim_agree += u64::from(proved == measured);
        tp_cell = format!("{proved}");
        if let Some(predicted) = lip_analysis::predict_throughput(netlist) {
            tally.tp_static_total += 1;
            tally.tp_static_agree += u64::from(proved == predicted);
        }
    }

    // Deadlock counterexamples must replay into the proved stuck state.
    if proof.deadlock() {
        tally.cex_total += 1;
        if let Some(cex) = proof.counterexample(netlist) {
            tally.cex_replayed += u64::from(confirm_stuck(netlist, &cex).is_ok());
        }
    }

    // Occupancy certificates are bounded by the declared capacities.
    for &(_, occ, cap) in &proof.relay_bounds {
        tally.bounds_total += 1;
        tally.bounds_ok += u64::from(occ <= cap);
    }

    Some(vec![
        name.to_owned(),
        proof.states.to_string(),
        format!("{}+{}", proof.stem, proof.period),
        if proof.is_live() { "live" } else { "DEAD" }.to_owned(),
        tp_cell,
        mark(dead_agree).into(),
    ])
}

fn main() {
    banner(
        "EXP-M1",
        "exact model checking (lip-mc) vs simulation and analysis",
        "statically derived throughput, liveness and occupancy bounds are proofs over the whole reachable space, and they agree exactly with every sampling oracle in the workspace",
    );

    // 1. Named + shipped corpus under the declared environment.
    let mut corpus: Vec<(String, Netlist)> = vec![
        ("fig1".into(), generate::fig1().netlist),
        ("tree(2,2,1)".into(), generate::tree(2, 2, 1).netlist),
        (
            "ring(2,3,full)".into(),
            generate::ring(2, 3, RelayKind::Full).netlist,
        ),
        (
            "chain(3,2,full)".into(),
            generate::chain(3, 2, RelayKind::Full).netlist,
        ),
        (
            "fork_join(3,0,2)".into(),
            generate::fork_join(3, 0, 2).netlist,
        ),
        (
            "composed(1,1,1,2,1)".into(),
            generate::composed_coupled(1, 1, 1, 2, 1).netlist,
        ),
        (
            "buffered_ring(3,1)".into(),
            generate::buffered_ring(3, 1).netlist,
        ),
    ];
    corpus.extend(shipped_designs());

    let mut tally = Tally::default();
    let mut rows = Vec::new();
    for (name, netlist) in &corpus {
        if let Some(row) = check_entry(name, netlist, &mut tally) {
            rows.push(row);
        }
    }
    let named_checked = tally.checked;
    println!(
        "{}",
        table(
            &[
                "system",
                "states",
                "stem+period",
                "verdict",
                "proved T",
                "oracle"
            ],
            &rows
        )
    );

    // 2. Random corpus (>= 40 seeds), pristine and with injected
    // blocking environments (the deadlock side of the matrix needs
    // designs that actually deadlock).
    let seeds = 48u64;
    for seed in 0..seeds {
        let (family, netlist) = generate::random_family(seed);
        if netlist.validate().is_err() {
            continue;
        }
        let name = format!("seed {seed} {family:?}");
        check_entry(&name, &netlist, &mut tally);
        for (what, mutated) in [
            ("dead source", kill_first_source(&netlist)),
            ("dead sink", kill_first_sink(&netlist)),
        ] {
            let Some(mutated) = mutated else { continue };
            check_entry(&format!("{name} + {what}"), &mutated, &mut tally);
        }
    }
    println!(
        "random corpus ({seeds} seeds + injected deadlocks): {} systems proved ({} aperiodic, {} over cap)",
        tally.checked - named_checked,
        tally.skipped_aperiodic,
        tally.skipped_cap
    );

    // 3. Adversarial BFS vs lip-verify's explorer on small systems.
    let mut adv_agree = 0u64;
    let mut adv_total = 0u64;
    let mut adv_states = 0u64;
    let mut adv_rows = Vec::new();
    let adv_t0 = Instant::now();
    for (name, netlist) in [
        ("fig1", generate::fig1().netlist),
        (
            "ring(2,1,full)",
            generate::ring(2, 1, RelayKind::Full).netlist,
        ),
        ("buffered_ring(2,0)", generate::buffered_ring(2, 0).netlist),
        (
            "chain(2,1,full)",
            generate::chain(2, 1, RelayKind::Full).netlist,
        ),
    ] {
        let cfg = McConfig {
            max_states: 200_000,
        };
        let proof = check_adversarial(&netlist, &cfg).expect("elaborates");
        let search = explore_system(&netlist, 200_000).expect("elaborates");
        adv_total += 1;
        adv_states += proof.states as u64;
        tally.peak_arena_bytes = tally.peak_arena_bytes.max(proof.peak_arena_bytes);
        let verdict_agrees = (proof.verdict == Verdict::DeadlockFree) == search.deadlock_free();
        let states_agree = !(proof.complete && search.complete && search.deadlock_free())
            || proof.states == search.states;
        adv_agree += u64::from(verdict_agrees && states_agree);
        adv_rows.push(vec![
            name.to_owned(),
            proof.states.to_string(),
            search.states.to_string(),
            proof.verdict.to_string(),
            mark(verdict_agrees && states_agree).into(),
        ]);
    }
    let adv_seconds = adv_t0.elapsed().as_secs_f64();
    println!(
        "{}",
        table(
            &["system", "mc states", "explorer states", "verdict", "agree"],
            &adv_rows
        )
    );

    let states_per_sec = if tally.mc_seconds > 0.0 {
        (tally.states_total as f64 + adv_states as f64) / (tally.mc_seconds + adv_seconds)
    } else {
        0.0
    };
    let agreement = [
        (
            "deadlock_oracle",
            tally.deadlock_agree == tally.deadlock_total,
        ),
        (
            "throughput_sim",
            tally.tp_sim_agree == tally.tp_sim_total && tally.tp_sim_total > 0,
        ),
        (
            "throughput_static",
            tally.tp_static_agree == tally.tp_static_total && tally.tp_static_total > 0,
        ),
        (
            "cex_replay",
            tally.cex_replayed == tally.cex_total && tally.cex_total > 0,
        ),
        (
            "bounds",
            tally.bounds_ok == tally.bounds_total && tally.bounds_total > 0,
        ),
        ("adversarial_explorer", adv_agree == adv_total),
    ];
    let all_agree = agreement.iter().all(|&(_, ok)| ok);
    println!(
        "agreement matrix: deadlock {}/{}, throughput-sim {}/{}, throughput-static {}/{}, \
         cex replay {}/{}, bounds {}/{}, adversarial {}/{} {}",
        tally.deadlock_agree,
        tally.deadlock_total,
        tally.tp_sim_agree,
        tally.tp_sim_total,
        tally.tp_static_agree,
        tally.tp_static_total,
        tally.cex_replayed,
        tally.cex_total,
        tally.bounds_ok,
        tally.bounds_total,
        adv_agree,
        adv_total,
        mark(all_agree)
    );
    println!(
        "state-space telemetry: {} states proved at {:.0} states/sec, peak arena {} bytes",
        tally.states_total + adv_states,
        states_per_sec,
        tally.peak_arena_bytes
    );

    // BENCH_check.json — jq-gated in CI (agreement matrix must be all
    // true; gate_skipped surfaces state-budget truncation).
    let gate_skipped = if tally.skipped_cap > 0 {
        "\"state_space_cap\"".to_owned()
    } else {
        "null".to_owned()
    };
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"schema_version\": {},\n",
        lip_obs::SCHEMA_VERSION
    ));
    json.push_str(&format!("  \"systems_proved\": {},\n", tally.checked));
    json.push_str(&format!("  \"random_seeds\": {seeds},\n"));
    json.push_str(&format!(
        "  \"skipped_aperiodic\": {},\n",
        tally.skipped_aperiodic
    ));
    json.push_str(&format!(
        "  \"skipped_state_cap\": {},\n",
        tally.skipped_cap
    ));
    json.push_str(&format!("  \"gate_skipped\": {gate_skipped},\n"));
    json.push_str(&format!(
        "  \"states_total\": {},\n",
        tally.states_total + adv_states
    ));
    json.push_str(&format!("  \"states_per_sec\": {states_per_sec:.1},\n"));
    json.push_str(&format!(
        "  \"peak_arena_bytes\": {},\n",
        tally.peak_arena_bytes
    ));
    json.push_str(&format!("  \"deadlocks_proved\": {},\n", tally.cex_total));
    json.push_str("  \"agreement\": {\n");
    for (i, (key, ok)) in agreement.iter().enumerate() {
        json.push_str(&format!(
            "    \"{key}\": {ok}{}\n",
            if i + 1 < agreement.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!("  \"ok\": {all_agree}\n"));
    json.push_str("}\n");
    std::fs::write("BENCH_check.json", json).expect("write BENCH_check.json");
    println!("wrote BENCH_check.json");

    let mut report = Report::new("exp_model_check");
    report
        .push_int("systems_proved", tally.checked)
        .push_int("states_total", tally.states_total + adv_states)
        .push_int("deadlocks_proved", tally.cex_total)
        .push_int("counterexamples_replayed", tally.cex_replayed)
        .push_int("skipped_state_cap", tally.skipped_cap)
        .push_bool("agreement_all", all_agree)
        .push_bool("ok", all_agree);
    emit_report(&report);
}
