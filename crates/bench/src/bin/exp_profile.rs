//! EXP-O2 — the causal stall profiler's blame attribution is *exact*
//! and agrees with both the counter layer and the static analyzer: on
//! Fig. 1 the imbalanced branch is charged exactly one lost cycle per 5
//! (`T = (m−i)/m = 4/5`), on a feedback ring every loop relay collects
//! `den − num` lost cycles per period (`T = S/(S+R)`), blame totals
//! equal the teed `MetricsRegistry` counters channel for channel, and
//! the dominant blamed cycle lands on `lip-lint`'s LIP005 binding cycle
//! across the named and random corpora. The profiled spans also render
//! as Chrome-trace JSON with one async span per delivered token.

use std::collections::BTreeSet;
use std::path::Path;

use lip_bench::{banner, emit_report, mark, report_dir, table, Report};
use lip_core::RelayKind;
use lip_graph::{generate, Netlist, SourceMap};
use lip_lint::{lint, RuleId};
use lip_sim::{profile_netlist, ProfileOptions, ProfiledRun};

/// LIP005's binding-cycle node set, if the rule fires.
fn lip005_nodes(netlist: &Netlist) -> Option<BTreeSet<u32>> {
    lint(netlist, &SourceMap::new())
        .iter()
        .find(|d| d.rule == RuleId::Lip005)
        .map(|d| d.nodes.iter().map(|n| n.id.index() as u32).collect())
}

/// Parse a checked-in `.lid` design.
fn load_design(name: &str) -> Netlist {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../designs")
        .join(name);
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let (netlist, _) = lip_graph::parse_netlist(&text)
        .unwrap_or_else(|e| panic!("parse {}: {e:?}", path.display()));
    netlist
}

/// The per-netlist cross-check: profiler vs counters vs static
/// analysis vs trace export.
struct Consistency {
    /// Every channel's stall/void count equals the teed registry's.
    counters_exact: bool,
    /// The causal verdict agrees with LIP005: steady loss implies the
    /// rule fired with the top-blamed entity on its binding cycle, and
    /// a silent rule implies zero steady loss.
    lint_agrees: bool,
    /// When the loss is structural (LIP005 fired, steady loss > 0) the
    /// greedy blame cycle's node set equals LIP005's exactly.
    cycle_set_equal: bool,
    /// Async begin/end spans are balanced and there is exactly one per
    /// sequence-matched delivered token (the latency histograms'
    /// sample counts).
    trace_spans_ok: bool,
}

fn cross_check(netlist: &Netlist, run: &ProfiledRun) -> Consistency {
    let counters_exact = (0..run.report.channel_stalls.len()).all(|ch| {
        run.report.channel_stalls[ch] == run.metrics.stalls(ch)
            && run.report.channel_voids[ch] == run.metrics.voids(ch)
    });

    let lip005 = lip005_nodes(netlist);
    let lint_agrees = match (&lip005, run.report.lost_cycles > 0) {
        (Some(nodes), true) => run
            .report
            .entries
            .first()
            .is_some_and(|top| nodes.contains(&top.node)),
        (None, lossy) => !lossy,
        (Some(_), false) => true, // bottleneck exists but loss is elsewhere-bounded
    };
    let cycle_set_equal = match &lip005 {
        // Structural steady loss: the causal loop must be the static
        // binding cycle, node for node. (With zero loss, or when the
        // loss comes from environment patterns, the blamed loop
        // legitimately traces the environment instead.)
        Some(nodes) if run.report.lost_cycles > 0 => {
            run.report
                .top_cycle_nodes()
                .into_iter()
                .collect::<BTreeSet<_>>()
                == *nodes
        }
        _ => true,
    };

    let begins = run.trace_json.matches("\"ph\":\"b\"").count() as u64;
    let ends = run.trace_json.matches("\"ph\":\"e\"").count() as u64;
    let delivered: u64 = run.report.latency.iter().map(|p| p.histogram.total()).sum();
    let trace_spans_ok = begins == ends && begins == delivered;

    Consistency {
        counters_exact,
        lint_agrees,
        cycle_set_equal,
        trace_spans_ok,
    }
}

fn main() {
    banner(
        "EXP-O2",
        "causal stall profiling vs counters and static analysis",
        "every lost cycle is attributable: fig1 charges exactly 1-in-5 to the imbalanced branch, rings charge den-num per period to each loop relay, blame totals equal the counter layer, and the dominant blamed cycle is LIP005's binding cycle",
    );

    let opts = ProfileOptions::default();

    // 1. Fig. 1 headline: exact 1-in-5 blame on the short branch.
    let fig1 = generate::fig1();
    let run = profile_netlist(&fig1.netlist, opts).expect("fig1 compiles");
    let period = run.periodicity.as_ref().expect("fig1 is periodic").period;
    let short_node = fig1.short_relays[0].index() as u32;
    let short_name = fig1.netlist.node(fig1.short_relays[0]).name().to_owned();
    let short_blame = run.report.blame_of_node(short_node);
    let fig1_exact = period.is_multiple_of(5)
        && short_blame == run.window / 5
        && run.report.lost_cycles == run.window / 5
        && run.report.consumed == run.window * 4 / 5;
    let fig1_checks = cross_check(&fig1.netlist, &run);
    let fig1_spans = run.trace_json.matches("\"ph\":\"b\"").count() as u64;
    let fig1_ok = fig1_exact
        && fig1_spans >= run.report.consumed
        && fig1_checks.counters_exact
        && fig1_checks.lint_agrees
        && fig1_checks.cycle_set_equal
        && fig1_checks.trace_spans_ok;
    println!("== Fig. 1: blame the imbalanced branch ==");
    println!(
        "{}",
        table(
            &[
                "window",
                "lost",
                "blame(short)",
                "expected",
                "top cycle == LIP005",
                "verdict"
            ],
            &[vec![
                run.window.to_string(),
                run.report.lost_cycles.to_string(),
                format!("{short_name}={short_blame}"),
                format!("{}", run.window / 5),
                mark(fig1_checks.cycle_set_equal).into(),
                mark(fig1_ok).into(),
            ]],
        )
    );

    // Persist the fig1 artefacts for CI schema validation.
    let dir = report_dir();
    std::fs::create_dir_all(&dir).expect("create report dir");
    let blame_path = dir.join("BLAME_fig1.json");
    std::fs::write(&blame_path, run.report.to_json()).expect("write BLAME_fig1.json");
    println!("blame report: {}", blame_path.display());
    let trace_path = dir.join("TRACE_fig1.json");
    std::fs::write(&trace_path, &run.trace_json).expect("write TRACE_fig1.json");
    println!("chrome trace: {}\n", trace_path.display());

    // 2. Feedback ring: every loop relay charged den−num per period.
    let ring = generate::ring(2, 3, RelayKind::Full); // T = S/(S+R) = 2/5
    let ring_run = profile_netlist(&ring.netlist, opts).expect("ring compiles");
    let ring_period = ring_run
        .periodicity
        .as_ref()
        .expect("ring is periodic")
        .period;
    let periods = ring_run.window / 5;
    let mut ring_rows = Vec::new();
    let mut ring_ok = ring_period.is_multiple_of(5) && ring_run.report.consumed == 2 * periods;
    for &relay in &ring.relays {
        let blamed = ring_run.report.blame_of_node(relay.index() as u32);
        let ok = blamed == 3 * periods;
        ring_ok &= ok;
        ring_rows.push(vec![
            ring.netlist.node(relay).name().to_owned(),
            blamed.to_string(),
            (3 * periods).to_string(),
            mark(ok).into(),
        ]);
    }
    println!("== ring(S=2, R=3): T = S/(S+R) = 2/5 ==");
    println!(
        "{}",
        table(
            &["loop relay", "blamed", "expected (den-num)/period", "ok"],
            &ring_rows
        )
    );

    // 3. Named corpus: profiler vs counters vs LIP005 vs trace export.
    let corpus: Vec<(&str, Netlist)> = vec![
        ("fig1.lid", load_design("fig1.lid")),
        ("buffered_loop.lid", load_design("buffered_loop.lid")),
        ("soc.lid", load_design("soc.lid")),
        ("tree(2,2,1)", generate::tree(2, 2, 1).netlist),
        ("tree(3,2,2)", generate::tree(3, 2, 2).netlist),
        (
            "ring(2,1,full)",
            generate::ring(2, 1, RelayKind::Full).netlist,
        ),
        (
            "ring(3,2,half)",
            generate::ring(3, 2, RelayKind::Half).netlist,
        ),
        (
            "chain(3,2,full)",
            generate::chain(3, 2, RelayKind::Full).netlist,
        ),
        ("fork_join(3,0,2)", generate::fork_join(3, 0, 2).netlist),
        (
            "composed(1,1,1,2,1)",
            generate::composed_coupled(1, 1, 1, 2, 1).netlist,
        ),
        ("buffered_ring(3,1)", generate::buffered_ring(3, 1).netlist),
    ];
    let mut rows = Vec::new();
    let mut named_total = 0u64;
    let mut named_ok = 0u64;
    let mut named_cycle_equal = 0u64;
    for (name, netlist) in &corpus {
        let run = profile_netlist(netlist, opts).expect("named corpus compiles");
        let c = cross_check(netlist, &run);
        let ok = c.counters_exact && c.lint_agrees && c.trace_spans_ok;
        named_total += 1;
        named_ok += u64::from(ok);
        named_cycle_equal += u64::from(c.cycle_set_equal);
        let top = run
            .report
            .entries
            .first()
            .map_or_else(|| "-".to_owned(), |e| format!("{}={}", e.name, e.blamed));
        rows.push(vec![
            (*name).to_owned(),
            run.window.to_string(),
            run.report.lost_cycles.to_string(),
            top,
            mark(c.counters_exact).into(),
            mark(c.lint_agrees).into(),
            mark(c.cycle_set_equal).into(),
            mark(c.trace_spans_ok).into(),
        ]);
    }
    println!("== named corpus ==");
    println!(
        "{}",
        table(
            &[
                "system",
                "window",
                "lost",
                "top blame",
                "counters",
                "lint",
                "cycle set",
                "trace"
            ],
            &rows
        )
    );

    // 4. Random corpus.
    let mut random_total = 0u64;
    let mut random_ok = 0u64;
    let mut random_cycle_equal = 0u64;
    let mut random_skipped = 0u64;
    for seed in 0..60u64 {
        let (_, netlist) = generate::random_family(seed);
        if netlist.validate().is_err() {
            continue;
        }
        let run = profile_netlist(&netlist, opts).expect("random corpus compiles");
        if run.periodicity.is_none() {
            random_skipped += 1;
            continue;
        }
        let c = cross_check(&netlist, &run);
        random_total += 1;
        let ok = c.counters_exact && c.lint_agrees && c.trace_spans_ok;
        random_ok += u64::from(ok);
        random_cycle_equal += u64::from(c.cycle_set_equal);
        if !ok || !c.cycle_set_equal {
            println!(
                "seed {seed}: counters {} lint {} cycle-set {} trace {}",
                mark(c.counters_exact),
                mark(c.lint_agrees),
                mark(c.cycle_set_equal),
                mark(c.trace_spans_ok),
            );
        }
    }
    println!("== random corpus (seeds 0..60) ==");
    println!(
        "{random_ok}/{random_total} consistent (counters+lint+trace), {random_cycle_equal}/{random_total} exact LIP005 cycle-set matches, {random_skipped} aperiodic skipped {}",
        mark(random_ok == random_total && random_total >= 30)
    );

    let ok = fig1_ok
        && ring_ok
        && named_ok == named_total
        && named_cycle_equal == named_total
        && random_ok == random_total
        && random_total >= 30;

    let mut report = Report::new("exp_profile");
    report
        .push_int("fig1_window", run.window)
        .push_int("fig1_short_branch_blame", short_blame)
        .push_bool("fig1_exact_one_in_five", fig1_exact)
        .push_bool("ring_relays_exact", ring_ok)
        .push_int("named_systems", named_total)
        .push_int("named_consistent", named_ok)
        .push_int("named_cycle_set_equal", named_cycle_equal)
        .push_int("random_checked", random_total)
        .push_int("random_consistent", random_ok)
        .push_int("random_cycle_set_equal", random_cycle_equal)
        .push_bool("ok", ok);
    emit_report(&report);
}
