//! EXP-T1 — tree topologies.
//!
//! Paper: "The simplest topology is a tree. The throughput of each node
//! ... is 1. However, each relay station must be initialized with non
//! valid outputs that must be eliminated flowing toward the primary
//! outputs. Thus the initial latency for each node before firing at full
//! speed can be as much as the longest path in the tree (transient
//! duration)."

use lip_bench::{banner, emit_report, mark, table, Report};
use lip_graph::{generate, topology};
use lip_sim::{measure, Ratio};

fn main() {
    banner(
        "EXP-T1",
        "tree topologies: throughput and transient",
        "T = 1; transient bounded by the longest relay path",
    );

    let mut rows = Vec::new();
    let mut ok_rows = 0u64;
    for depth in 1..=4usize {
        for fanout in 1..=3usize {
            for relays in 0..=3usize {
                if fanout.pow(depth as u32) > 16 {
                    continue;
                }
                let t = generate::tree(depth, fanout, relays);
                let longest = topology::longest_latency(&t.netlist).expect("tree is acyclic");
                let m = measure(&t.netlist).expect("tree measures");
                let throughput = m.system_throughput().expect("has sinks");
                let p = m.periodicity.expect("tree is periodic");
                ok_rows += u64::from(throughput == Ratio::new(1, 1) && p.transient <= longest + 1);
                rows.push(vec![
                    depth.to_string(),
                    fanout.to_string(),
                    relays.to_string(),
                    throughput.to_string(),
                    longest.to_string(),
                    p.transient.to_string(),
                    mark(throughput == Ratio::new(1, 1) && p.transient <= longest + 1).into(),
                ]);
            }
        }
    }
    println!(
        "{}",
        table(
            &[
                "depth",
                "fanout",
                "RS/edge",
                "T",
                "longest path",
                "transient",
                "check"
            ],
            &rows
        )
    );
    println!("every tree reaches T = 1 with transient <= longest path (+1 measurement grain)");

    let mut report = Report::new("exp_tree");
    report
        .push_int("trees_checked", rows.len() as u64)
        .push_int("trees_ok", ok_rows)
        .push_bool("ok", ok_rows == rows.len() as u64);
    emit_report(&report);
}
