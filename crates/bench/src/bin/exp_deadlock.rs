//! EXP-V2 — the liveness statements and the skeleton-based deadlock
//! recipe: "Any LID is deadlock free if it has only a feed-forward
//! topology; any LID using only full relay stations is deadlock free;
//! any LID with full and half relay stations has potential deadlocks iff
//! half relay stations are present in loops. ... If we simulate the
//! system up to the transient's extinction, either the deadlock will
//! show, or will be forever avoided. ... the cases that inject deadlocks
//! can be cured by low intrusive changes."

use lip_analysis::{cure_deadlocks, half_relays_in_loops};
use lip_bench::{banner, emit_report, mark, table, Report};
use lip_core::{Pattern, RelayKind};
use lip_graph::generate;
use lip_verify::explore_system;
use lip_verify::liveness::{exhaustive_pattern_search, theorem_sweep, LivenessClass};

fn main() {
    banner(
        "EXP-V2",
        "liveness theorems + skeleton-decided deadlock + cures",
        "feed-forward and full-only LIDs never starve; half stations in loops are the only risk; skeleton simulation decides; substitution cures",
    );

    // 1. Theorem sweep.
    let cases = theorem_sweep(40).expect("corpus elaborates");
    let mut counts: std::collections::BTreeMap<String, (u32, u32, bool)> = Default::default();
    for case in &cases {
        let e = counts.entry(case.class.to_string()).or_insert((0, 0, true));
        e.0 += 1;
        if case.live {
            e.1 += 1;
        }
        e.2 &= case.consistent;
    }
    let rows: Vec<Vec<String>> = counts
        .iter()
        .map(|(class, (n, live, consistent))| {
            vec![
                class.clone(),
                n.to_string(),
                live.to_string(),
                (n - live).to_string(),
                mark(*consistent).into(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(&["class", "cases", "live", "starved", "consistent"], &rows)
    );
    let half_cases = cases
        .iter()
        .filter(|c| c.class == LivenessClass::HalfInLoops)
        .count();
    println!("({half_cases} half-in-loop cases decided individually by skeleton simulation)\n");

    let theorems_consistent = cases.iter().all(|c| c.consistent);

    // 2. Cure demonstration on starving configurations.
    let mut cure_rows = Vec::new();
    let mut cured = 0u64;
    for (s, r, stop) in [
        (2usize, 2usize, vec![true, false]),
        (1, 2, vec![true, true, false]),
        (3, 3, vec![true, false, true, false]),
    ] {
        let ring = generate::ring_with_entry(
            s,
            r,
            RelayKind::Half,
            Pattern::Never,
            Pattern::Cyclic(stop.clone()),
        );
        let mut netlist = ring.netlist;
        if netlist.validate().is_err() {
            continue;
        }
        let suspects = half_relays_in_loops(&netlist).len();
        let report = cure_deadlocks(&mut netlist, 10_000, 5_000).expect("elaborates");
        cured += u64::from(report.is_live());
        cure_rows.push(vec![
            format!(
                "half ring({s},{r}), stop duty {}",
                stop.iter().filter(|b| **b).count()
            ),
            suspects.to_string(),
            report.substituted.len().to_string(),
            report.is_live().to_string(),
            mark(report.is_live()).into(),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "system",
                "suspects",
                "substituted",
                "live after cure",
                "check"
            ],
            &cure_rows
        )
    );
    println!("cures are low-intrusive: only suspect stations are substituted, one at a time");

    // 3. Exhaustive environment-pattern search: every cyclic void/stop
    //    pattern of period <= 4 against small rings of each kind. Since
    //    system + periodic environment is finite-state, each instance is
    //    *decided*, not merely tested.
    println!("\n== exhaustive periodic-environment search (periods <= 4) ==");
    let mut rows = Vec::new();
    for kind in [RelayKind::Full, RelayKind::Half] {
        for (s, r) in [(1usize, 1usize), (2, 1), (2, 2)] {
            let report = exhaustive_pattern_search(s, r, kind, 4).expect("rings elaborate");
            rows.push(vec![
                format!("{kind} ring S={s} R={r}"),
                report.environments.to_string(),
                report.live.to_string(),
                report.starving.len().to_string(),
                mark(kind == RelayKind::Half || report.all_live()).into(),
            ]);
        }
    }
    println!(
        "{}",
        table(
            &["system", "environments", "live", "starving", "consistent"],
            &rows
        )
    );
    println!("full-station rings: decided live under every periodic disturbance");
    println!("(exhaustive, not sampled) — the paper's second statement. half-station");
    println!("rings: every instance decided individually; see EXPERIMENTS.md for the");
    println!("honest discussion of injection frequency");

    // 4. Universal exploration: breadth-first over the whole control
    //    state space under ALL environment behaviours (not just the
    //    periodic ones) — a wedged state is one from which no shell can
    //    ever fire again.
    println!("\n== universal environment exploration (model checking) ==");
    let cure_count = cure_rows.len() as u64;
    let mut rows = Vec::new();
    let mut deadlock_free = 0u64;
    for (name, netlist) in [
        ("Fig. 1 fork-join", generate::fig1().netlist),
        (
            "full ring S=2 R=1 (with entry)",
            generate::ring_with_entry(2, 1, RelayKind::Full, Pattern::Never, Pattern::Never)
                .netlist,
        ),
        (
            "half ring S=2 R=2 (with entry)",
            generate::ring_with_entry(2, 2, RelayKind::Half, Pattern::Never, Pattern::Never)
                .netlist,
        ),
        (
            "half ring S=3 R=3 (with entry)",
            generate::ring_with_entry(3, 3, RelayKind::Half, Pattern::Never, Pattern::Never)
                .netlist,
        ),
        (
            "buffered ring S=3 R=0",
            generate::buffered_ring(3, 0).netlist,
        ),
        (
            "coupled composition",
            generate::composed_coupled(1, 1, 1, 2, 1).netlist,
        ),
    ] {
        let search = explore_system(&netlist, 500_000).expect("elaborates");
        deadlock_free += u64::from(search.deadlock_free());
        rows.push(vec![
            name.to_owned(),
            search.states.to_string(),
            search.transitions.to_string(),
            search.complete.to_string(),
            mark(search.deadlock_free()).into(),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "system",
                "control states",
                "transitions",
                "exhausted",
                "deadlock free"
            ],
            &rows
        )
    );
    println!("every reachable control state was enumerated under every environment");
    println!("choice sequence: within these systems, deadlock is impossible — not");
    println!("merely unobserved");

    let explored = rows.len() as u64;
    let mut report = Report::new("exp_deadlock");
    report
        .push_int("theorem_cases", cases.len() as u64)
        .push_bool("theorems_consistent", theorems_consistent)
        .push_int("cures_attempted", cure_count)
        .push_int("cures_live", cured)
        .push_int("systems_explored", explored)
        .push_int("systems_deadlock_free", deadlock_free)
        .push_bool(
            "ok",
            theorems_consistent && cured == cure_count && deadlock_free == explored,
        );
    emit_report(&report);
}
