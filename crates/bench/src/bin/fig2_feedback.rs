//! EXP-F2 — Fig. 2: feedback topology evolution.
//!
//! Paper: "A maximum of S valid data can be present at a time, out of
//! S + R positions. This justifies the number S/(S+R) for the maximum
//! throughput."

use lip_bench::{banner, emit_report, mark, table, Report};
use lip_core::RelayKind;
use lip_graph::generate;
use lip_sim::{measure, Evolution, Ratio, System};

fn main() {
    banner(
        "EXP-F2",
        "Fig. 2 — feedback topology evolution",
        "at most S tokens over S+R loop places; T = S/(S+R)",
    );

    // The figure's instance: S = 2 shells (A, B), R = 1 relay station.
    let fig2 = generate::ring(2, 1, RelayKind::Full);
    println!("topology: {}\n", fig2.netlist);
    let nodes = [fig2.shells[0], fig2.shells[1], fig2.relays[0]];
    let ev = Evolution::record(&fig2.netlist, &nodes, 14).expect("fig2 elaborates");
    println!("{ev}");

    // Token-count invariant: never more than S informative tokens on
    // the loop.
    let mut sys = System::new(&fig2.netlist).expect("fig2 elaborates");
    let mut max_tokens = 0usize;
    for _ in 0..60 {
        sys.settle();
        let tokens: usize = fig2
            .shells
            .iter()
            .map(|s| usize::from(sys.shell(*s).expect("shell").outputs()[0].is_valid()))
            .chain(
                fig2.relays
                    .iter()
                    .map(|r| sys.relay(*r).expect("relay").occupancy()),
            )
            .sum();
        max_tokens = max_tokens.max(tokens);
        sys.step();
    }
    println!("max informative tokens observed on the loop: {max_tokens} (S = 2)\n");
    assert!(max_tokens <= 2);

    let mut rows = Vec::new();
    let mut mismatches = 0u64;
    for s in 1..=6usize {
        for r in 1..=6usize {
            let ring = generate::ring(s, r, RelayKind::Full);
            let measured = measure(&ring.netlist)
                .expect("ring measures")
                .system_throughput()
                .expect("one sink");
            let formula = Ratio::new(s as u64, (s + r) as u64);
            mismatches += u64::from(measured != formula);
            rows.push(vec![
                s.to_string(),
                r.to_string(),
                formula.to_string(),
                measured.to_string(),
                mark(measured == formula).into(),
            ]);
        }
    }
    println!(
        "{}",
        table(&["S", "R", "S/(S+R)", "measured", "check"], &rows)
    );

    let mut report = Report::new("fig2_feedback");
    report
        .push_int("max_loop_tokens", max_tokens as u64)
        .push_int("rings_checked", rows.len() as u64)
        .push_int("formula_mismatches", mismatches)
        .push_bool("ok", max_tokens <= 2 && mismatches == 0);
    emit_report(&report);
}
