//! EXP-O3 — engine flight recorder: self-profiling overhead, kernel
//! execution counters, and live sweep telemetry.
//!
//! Observability is only trustworthy when it is *accounted for*: this
//! experiment measures the measurement. Three legs over one corpus:
//!
//! 1. **Baseline** (`NullRecorder` / `NullProgress`): the generic
//!    measurement loop with every hook compiled away — what every other
//!    experiment pays.
//! 2. **Disabled recorder** ([`FlightRecorder::disabled`]): the hooks
//!    are compiled in but gated off at runtime. The wall-clock delta
//!    against leg 1 is the price of *shipping* the instrumentation, and
//!    it is gated `< 3%`.
//! 3. **Enabled recorder**: first the same corpus again, recorder on,
//!    min-of-N like the other legs — the apples-to-apples *enabled*
//!    overhead, gated `< 15%` (occupancy popcounts are sampled every
//!    [`lip_sim::OCC_SAMPLE_EVERY`] settles; retirement counters stay
//!    exact). Then a full self-profiled run — ambient recorder
//!    installed, root `sweep` span over per-topology `measure` spans,
//!    counted kernel execution, a memoized capacity search (cache +
//!    analysis telemetry) and a `lip-par` fan-out (worker spans). The
//!    drained dump must explain `>= 95%` of the root span's wall time,
//!    and the per-opcode counters must reconcile *exactly*: ops retired
//!    equals op-tape length × settles, per topology and merged.
//!
//! Artefacts: `BENCH_runtime.json` (versioned [`RuntimeReport`]),
//! `TRACE_runtime.json` (Chrome trace of the enabled leg) and
//! `progress.prom` (Prometheus text exposition, the `lip-top` input) in
//! the report directory.
//!
//! `LIP_FLIGHT=0` runs only legs 1–2 (the overhead gate) — the mode CI
//! uses to check the disabled path in isolation without rewriting the
//! enabled-leg artefacts.

use std::time::Instant;

use lip_analysis::minimal_equalizing_capacity;
use lip_bench::{banner, emit_report, mark, report_dir, table, Report};
use lip_core::{Pattern, RelayKind};
use lip_graph::{generate, Netlist};
use lip_obs::{
    flight, runtime_chrome_trace, span_coverage, FlightRecorder, KernelCounters, NullProgress,
    PromFileProgress, RuntimeReport,
};
use lip_sim::{
    measure_batch_periodic, measure_batch_periodic_obs, LanePatterns, SettleProgram,
    ThroughputCache, LANES,
};

const BUDGET: u64 = 8192;
const REPS: usize = 7;
/// Gate: runtime-disabled instrumentation must cost `< 3%` wall clock.
const MAX_DISABLED_OVERHEAD_PCT: f64 = 3.0;
/// Gate: the fully-enabled recorder (spans + counted kernels with
/// sampled occupancy) over the same corpus, min-of-[`REPS`] like the
/// other legs. Exact retirement counters are cheap; the popcount
/// occupancy probe is the dominant cost and is sampled
/// (`lip_sim::OCC_SAMPLE_EVERY`) to keep this small.
const MAX_ENABLED_OVERHEAD_PCT: f64 = 15.0;
/// Gate: the span tree must explain `>= 95%` of the sweep's wall time.
const MIN_SPAN_COVERAGE: f64 = 0.95;

/// Period-64 duty stall pattern asserting stop on `base` of every 64
/// cycles (Bresenham-spread) — keeps lanes from converging instantly so
/// the timed legs do real settle work.
fn duty_pattern(base: usize) -> Pattern {
    let bits: Vec<bool> = (0..64)
        .map(|c| (c + 1) * base / 64 > c * base / 64)
        .collect();
    Pattern::Cyclic(bits)
}

fn stall_patterns(prog: &SettleProgram) -> LanePatterns {
    let mut pats = LanePatterns::broadcast(prog);
    for lane in 0..LANES {
        for j in 0..prog.sink_count() {
            pats.set_sink(j, lane, duty_pattern(lane));
        }
    }
    pats
}

fn corpus() -> Vec<(String, Netlist)> {
    vec![
        ("fig1".to_string(), generate::fig1().netlist),
        ("tree2x2".to_string(), generate::tree(2, 2, 1).netlist),
        (
            "ring3x2".to_string(),
            generate::ring(3, 2, RelayKind::Full).netlist,
        ),
    ]
}

/// One timed pass over the corpus with all hooks compiled away.
fn leg_baseline(items: &[(String, Netlist, LanePatterns)]) {
    for (_, netlist, pats) in items {
        std::hint::black_box(
            measure_batch_periodic(netlist, pats, BUDGET).expect("corpus measures"),
        );
    }
}

/// One timed pass with the recorder present but runtime-disabled.
fn leg_disabled(items: &[(String, Netlist, LanePatterns)], rec: &FlightRecorder) {
    for (name, netlist, pats) in items {
        let (m, kc) = measure_batch_periodic_obs::<u64, _, _>(
            netlist,
            pats,
            BUDGET,
            name,
            rec,
            &mut NullProgress,
        )
        .expect("corpus measures");
        assert!(kc.is_none(), "disabled recorder must not count kernels");
        std::hint::black_box(m);
    }
}

/// One timed pass with the recorder fully enabled: spans recorded and
/// kernel executions counted — the apples-to-apples cost of *running*
/// the instrumentation over the exact work the other legs time.
fn leg_enabled(items: &[(String, Netlist, LanePatterns)], rec: &FlightRecorder) {
    for (name, netlist, pats) in items {
        let (m, kc) = measure_batch_periodic_obs::<u64, _, _>(
            netlist,
            pats,
            BUDGET,
            name,
            rec,
            &mut NullProgress,
        )
        .expect("corpus measures");
        assert!(kc.is_some(), "enabled recorder must count kernels");
        std::hint::black_box((m, kc));
    }
}

fn min_time(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut t = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        t = t.min(t0.elapsed().as_secs_f64());
    }
    t
}

struct TopoRow {
    name: String,
    cycles: u64,
    settles: u64,
    ops: u64,
    occupancy: f64,
    reconciled: bool,
}

fn main() {
    banner(
        "EXP-O3",
        "engine flight recorder: overhead, kernel counters, live telemetry",
        "disabled recorder < 3% overhead; span tree covers >= 95%; counters reconcile exactly",
    );

    let overhead_only = std::env::var("LIP_FLIGHT").is_ok_and(|v| v == "0");

    let items: Vec<(String, Netlist, LanePatterns)> = corpus()
        .into_iter()
        .map(|(name, netlist)| {
            let prog = SettleProgram::compile(&netlist).expect("corpus compiles");
            let pats = stall_patterns(&prog);
            (name, netlist, pats)
        })
        .collect();

    // ------------------------------------------------------------------
    // Legs 1 + 2: the overhead gate.
    // ------------------------------------------------------------------
    leg_baseline(&items); // warm-up: fault code + allocator before timing
    let t_base = min_time(REPS, || leg_baseline(&items));
    let off = FlightRecorder::disabled();
    let t_off = min_time(REPS, || leg_disabled(&items, &off));
    let overhead_disabled_pct = ((t_off / t_base) - 1.0).max(0.0) * 100.0;
    println!(
        "overhead: baseline {:.2} ms, disabled recorder {:.2} ms -> {:.2}% (gate < {MAX_DISABLED_OVERHEAD_PCT}%) {}",
        t_base * 1e3,
        t_off * 1e3,
        overhead_disabled_pct,
        mark(overhead_disabled_pct < MAX_DISABLED_OVERHEAD_PCT),
    );
    println!();

    if overhead_only {
        println!("LIP_FLIGHT=0: overhead gate only, enabled-leg artefacts untouched");
        let mut report = Report::new("exp_runtime_obs");
        report
            .push_str("mode", "disabled_only")
            .push_f64("wall_time_baseline_sec", t_base)
            .push_f64("wall_time_disabled_sec", t_off)
            .push_f64("overhead_pct", overhead_disabled_pct)
            .push_bool("ok", overhead_disabled_pct < MAX_DISABLED_OVERHEAD_PCT);
        emit_report(&report);
        assert!(
            overhead_disabled_pct < MAX_DISABLED_OVERHEAD_PCT,
            "disabled recorder costs {overhead_disabled_pct:.2}% (gate {MAX_DISABLED_OVERHEAD_PCT}%)"
        );
        return;
    }

    // Leg 3a: the *fair* enabled-overhead measurement — identical
    // corpus work, identical min-of-REPS timing, recorder on. (The
    // self-profiled sweep below does strictly more work — searches,
    // lint fixes, fan-out — so its wall time is not an overhead
    // number.)
    let on = FlightRecorder::new();
    let t_on_corpus = min_time(REPS, || leg_enabled(&items, &on));
    drop(on.drain());
    let overhead_enabled_pct = ((t_on_corpus / t_base) - 1.0).max(0.0) * 100.0;
    println!(
        "overhead: enabled recorder {:.2} ms -> {:.2}% (gate < {MAX_ENABLED_OVERHEAD_PCT}%) {}",
        t_on_corpus * 1e3,
        overhead_enabled_pct,
        mark(overhead_enabled_pct < MAX_ENABLED_OVERHEAD_PCT),
    );
    println!();

    // ------------------------------------------------------------------
    // Leg 3: the self-profiled run.
    // ------------------------------------------------------------------
    let rec = FlightRecorder::new();
    flight::install(&rec);
    let mut progress = PromFileProgress::new(report_dir().join("progress.prom"));
    let mut rows: Vec<TopoRow> = Vec::new();
    let mut merged: Option<KernelCounters> = None;
    let t0 = Instant::now();
    {
        let _root = rec.span("sweep", "exp_runtime_obs");
        for (name, netlist, pats) in &items {
            let (m, kc) = measure_batch_periodic_obs::<u64, _, _>(
                netlist,
                pats,
                BUDGET,
                name,
                &rec,
                &mut progress,
            )
            .expect("corpus measures");
            let kc = kc.expect("enabled recorder must count kernels");
            // The exact accounting check: every tape op of every settle
            // counted once, and settles match the cycles executed.
            let tape_len = SettleProgram::compile(netlist)
                .expect("corpus compiles")
                .kernel_op_count() as u64;
            assert_eq!(kc.settles, m.cycles, "{name}: one counted settle per cycle");
            assert_eq!(
                kc.total_ops(),
                tape_len * kc.settles,
                "{name}: ops retired must equal tape length x settles"
            );
            assert!(kc.reconciles(), "{name}: kernel counters must reconcile");
            rows.push(TopoRow {
                name: name.clone(),
                cycles: m.cycles,
                settles: kc.settles,
                ops: kc.total_ops(),
                occupancy: kc.occupancy(),
                reconciled: kc.reconciles(),
            });
            match merged.as_mut() {
                Some(acc) => acc.merge(&kc),
                None => merged = Some(kc),
            }
        }

        // Cache + analysis telemetry: a memoized capacity search run
        // twice — the second run is pure cache hits.
        {
            let f = generate::fig1();
            let mut cache = ThroughputCache::new();
            let first = minimal_equalizing_capacity(&f.netlist, f.short_relays[0], 6, &mut cache)
                .expect("fig1 sizes");
            let second = minimal_equalizing_capacity(&f.netlist, f.short_relays[0], 6, &mut cache)
                .expect("fig1 sizes");
            assert_eq!(first, second);
            assert!(cache.hits() > 0 && cache.misses() > 0);
        }

        // Lint-fix telemetry: the `lip-lint --fix` flow — one compile
        // per file, then every insertion fix-it applied as an
        // incremental patch (`compile.patch`), never a per-fix
        // recompile.
        {
            let src = "source in\n\
                       shell a identity\n\
                       shell b identity\n\
                       sink out\n\
                       connect in:0 -> a:0\n\
                       connect a:0 -> b:0\n\
                       connect b:0 -> out:0\n";
            let parsed = lip_graph::parse_netlist_spanned(src).expect("lint corpus parses");
            let mut netlist = parsed.netlist;
            let diags = lip_lint::lint(&netlist, &parsed.source_map);
            let mut program = SettleProgram::compile(&netlist).expect("lint corpus compiles");
            let fix = lip_lint::apply_fixits_compiled(&mut netlist, &mut program, &diags)
                .expect("fixes apply");
            assert!(
                fix.total_inserted() > 0,
                "lint corpus must trigger insertion fix-its"
            );
            assert_eq!(
                program,
                SettleProgram::compile(&netlist).expect("fixed netlist compiles"),
                "patched program must equal a fresh compile of the fixed netlist"
            );
        }

        // Worker telemetry: a small fan-out so `par` spans land in the
        // dump (worker spans live on their own threads; the wrapper
        // span keeps the main thread's time accounted).
        {
            let _fanout = rec.span("par", "fanout");
            let names: Vec<String> = items.iter().map(|(n, _, _)| n.clone()).collect();
            let lens = lip_par::par_map_jobs(2, &names, String::len);
            assert_eq!(lens.len(), items.len());
        }
    }
    let t_on = t0.elapsed().as_secs_f64();
    flight::uninstall();
    let dump = rec.drain();
    if let Some(e) = progress.take_error() {
        eprintln!("error: progress exposition failed: {e}");
        std::process::exit(1);
    }

    let coverage = span_coverage(&dump, "sweep");
    let merged = merged.expect("corpus is non-empty");

    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.cycles.to_string(),
                r.settles.to_string(),
                r.ops.to_string(),
                format!("{:.1}%", r.occupancy * 100.0),
                mark(r.reconciled).into(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "topology",
                "cycles",
                "settles",
                "ops retired",
                "occupancy",
                "reconciled"
            ],
            &printable,
        )
    );
    println!(
        "merged: {} ops over {} settles at {} lanes, occupancy {:.1}%, reconciled: {}",
        merged.total_ops(),
        merged.settles,
        merged.lanes,
        merged.occupancy() * 100.0,
        mark(merged.reconciles()),
    );
    println!(
        "span tree: {} spans on {} thread(s), {} dropped; coverage {:.1}% (gate >= {:.0}%) {}",
        dump.spans.len(),
        dump.threads,
        dump.dropped,
        coverage * 100.0,
        MIN_SPAN_COVERAGE * 100.0,
        mark(coverage >= MIN_SPAN_COVERAGE),
    );
    for key in [
        "cache.hits",
        "cache.misses",
        "analysis.capacity_probes",
        "par.items",
        "compile.full",
        "compile.patch",
    ] {
        assert!(
            dump.counters.contains_key(key),
            "enabled run must surface the {key} counter"
        );
    }
    // The edit loops must run on the patch path: bisection probes and
    // lint fix-its are patches, so full compiles stay a small constant
    // (corpus setup + one per search/file) while patches track probes.
    assert!(
        dump.counters["compile.patch"] >= dump.counters["analysis.capacity_probes"],
        "every capacity probe must be an incremental patch, not a recompile"
    );
    println!(
        "counters: cache {}h/{}m, {} capacity probes, {} par items, compiles {} full / {} patched",
        dump.counters["cache.hits"],
        dump.counters["cache.misses"],
        dump.counters["analysis.capacity_probes"],
        dump.counters["par.items"],
        dump.counters["compile.full"],
        dump.counters["compile.patch"],
    );
    println!();

    // ------------------------------------------------------------------
    // Persist + gate.
    // ------------------------------------------------------------------
    let mut runtime = RuntimeReport::new("exp_runtime_obs", dump);
    runtime.set_kernel(merged.clone());
    runtime.set_overhead(overhead_disabled_pct, overhead_enabled_pct);
    runtime.set_span_coverage(coverage);
    std::fs::write("BENCH_runtime.json", runtime.to_json()).expect("write BENCH_runtime.json");
    println!("wrote BENCH_runtime.json");

    let trace_path = report_dir().join("TRACE_runtime.json");
    std::fs::create_dir_all(report_dir()).expect("create report dir");
    std::fs::write(&trace_path, runtime_chrome_trace(runtime.dump()))
        .expect("write TRACE_runtime.json");
    println!("wrote {} (chrome://tracing)", trace_path.display());
    println!(
        "wrote {} (lip-top input)",
        report_dir().join("progress.prom").display()
    );

    let ok = overhead_disabled_pct < MAX_DISABLED_OVERHEAD_PCT
        && overhead_enabled_pct < MAX_ENABLED_OVERHEAD_PCT
        && coverage >= MIN_SPAN_COVERAGE
        && merged.reconciles();
    let mut report = Report::new("exp_runtime_obs");
    report
        .push_str("mode", "full")
        .push_f64("wall_time_baseline_sec", t_base)
        .push_f64("wall_time_disabled_sec", t_off)
        .push_f64("wall_time_enabled_sec", t_on_corpus)
        .push_f64("wall_time_selfprofile_sec", t_on)
        .push_f64("overhead_pct", overhead_disabled_pct)
        .push_f64("overhead_enabled_pct", overhead_enabled_pct)
        .push_f64("span_coverage", coverage)
        .push_int("kernel_ops_total", merged.total_ops())
        .push_int("kernel_settles", merged.settles)
        .push_f64("kernel_occupancy", merged.occupancy())
        .push_bool("kernel_reconciled", merged.reconciles())
        .push_int("topologies", rows.len() as u64)
        .push_bool("ok", ok);
    emit_report(&report);

    assert!(
        overhead_disabled_pct < MAX_DISABLED_OVERHEAD_PCT,
        "disabled recorder costs {overhead_disabled_pct:.2}% (gate {MAX_DISABLED_OVERHEAD_PCT}%)"
    );
    assert!(
        overhead_enabled_pct < MAX_ENABLED_OVERHEAD_PCT,
        "enabled recorder costs {overhead_enabled_pct:.2}% (gate {MAX_ENABLED_OVERHEAD_PCT}%)"
    );
    assert!(
        coverage >= MIN_SPAN_COVERAGE,
        "span tree covers only {:.1}% of the sweep (gate {:.0}%)",
        coverage * 100.0,
        MIN_SPAN_COVERAGE * 100.0,
    );
}
