//! EXP-D1 — the cross-run differ catches an injected capacity
//! regression end-to-end and stays silent across identical re-runs.
//!
//! The self-test drives `lip-delta` exactly the way `run_experiments.sh`
//! and CI do, against a dedicated store:
//!
//! 1. **Baseline**: fig1 with its short-branch relay as `Fifo(2)`
//!    (capacity equal to the stock full relay, `T = 4/5`), profiled
//!    and proved; several captures build the sentinel's timing
//!    history.
//! 2. **Identical re-run**: a fresh sweep of the same design must diff
//!    *clean* — exact leaves byte-equal, wall-clock inside the noise
//!    band (no false positives).
//! 3. **Injected regression**: the short relay's fifo capacity is
//!    downgraded 2 → 1 through PR 8's patch path
//!    (`patch_fifo_capacity`, hash maintained in place and equal to a
//!    cold compile of the edited netlist). The diff must flag it: the
//!    measured *and* mc-proved throughput `Ratio`s move as hard exact
//!    diffs, the kernel op tape shrinks per-opcode, and the throughput
//!    delta is attributed to the edited channel's blame shift.
//! 4. **Injected timing regression**: a synthetic 20× wall-clock
//!    inflation on otherwise identical artifacts trips the sentinel
//!    (and nothing else).
//!
//! Writes `BENCH_delta.json` (jq-gated in CI) and the usual
//! `exp_delta.json` report.

use std::time::Instant;

use lip_bench::{banner, emit_report, mark, table, Report};
use lip_core::RelayKind;
use lip_delta::{diff_runs, Json, RunBuilder, RunStore, Sentinel};
use lip_graph::{generate, Netlist, NodeId};
use lip_mc::{check_declared, McConfig};
use lip_obs::{FlightRecorder, KernelCounters, NullProgress};
use lip_sim::{
    measure_batch_periodic_obs, profile_netlist, LanePatterns, ProfileOptions, Ratio, SettleProgram,
};

/// Dedicated store so the self-test's injected regressions never
/// pollute the real sweep trajectory under `target/runs`.
const STORE_ROOT: &str = "target/runs-exp-delta";

/// Cycle budget for the counted kernel leg.
const KERNEL_CYCLES: u64 = 640;

/// One sweep's artifacts for a netlist, as committed to the store.
struct Snapshot {
    blame_json: String,
    check_json: String,
    kernel_json: String,
    measured: Ratio,
    proved: Ratio,
    structural_hash: u64,
    top_blamed: Option<String>,
}

impl Snapshot {
    fn top_blamed(&self) -> &str {
        self.top_blamed.as_deref().unwrap_or("-")
    }
}

fn ratio_json(r: Ratio) -> String {
    format!("{{\"num\": {}, \"den\": {}}}", r.num(), r.den())
}

fn kernel_json(kc: &KernelCounters) -> String {
    let by_op: Vec<String> = kc
        .by_op
        .iter()
        .map(|r| {
            format!(
                "{{\"name\": \"{}\", \"ops_retired\": {}}}",
                r.name, r.ops_retired
            )
        })
        .collect();
    let by_stratum: Vec<String> = kc
        .by_stratum
        .iter()
        .map(|&(name, n)| format!("{{\"name\": \"{name}\", \"ops_retired\": {n}}}"))
        .collect();
    format!(
        "{{\"schema_version\": {}, \"kind\": \"kernel_counters\", \"lanes\": {}, \
         \"settles\": {}, \"ops_total\": {}, \"reconciled\": {}, \
         \"by_opcode\": [{}], \"by_stratum\": [{}]}}\n",
        lip_obs::schema::REPORT,
        kc.lanes,
        kc.settles,
        kc.total_ops(),
        kc.reconciles(),
        by_op.join(", "),
        by_stratum.join(", ")
    )
}

/// Profile, prove and count one design — everything a sweep would
/// capture about it.
fn snapshot(netlist: &Netlist) -> Snapshot {
    let run = profile_netlist(netlist, ProfileOptions::default()).expect("design compiles");
    let measured = Ratio::new(run.report.consumed, run.window);
    let proof = check_declared(netlist, &McConfig::default()).expect("design proves");
    assert!(proof.is_live(), "EXP-D1 designs are deadlock-free");
    let proved = proof
        .system_throughput()
        .expect("declared mode proves a rate");
    let prog = SettleProgram::compile(netlist).expect("design compiles");
    let pats = LanePatterns::broadcast(&prog);
    let rec = FlightRecorder::new();
    let _guard = rec.span("exp", "kernel_leg");
    let (_m, kc) = measure_batch_periodic_obs::<u64, _, _>(
        netlist,
        &pats,
        KERNEL_CYCLES,
        "exp_delta",
        &rec,
        &mut NullProgress,
    )
    .expect("counted measurement runs");
    let kc = kc.expect("enabled recorder yields counters");
    assert!(kc.reconciles(), "kernel counters reconcile");
    let agree = measured == proved;
    let check_json = format!(
        "{{\"schema_version\": {}, \"kind\": \"throughput_check\", \"topology\": \"fig1\", \
         \"structural_hash\": \"{:016x}\", \"measured\": {}, \"proved\": {}, \
         \"live\": true, \"agree\": {}}}\n",
        lip_obs::schema::REPORT,
        prog.stable_structural_hash(),
        ratio_json(measured),
        ratio_json(proved),
        agree
    );
    assert!(agree, "measured {measured:?} must equal proved {proved:?}");
    Snapshot {
        blame_json: run.report.to_json(),
        check_json,
        kernel_json: kernel_json(&kc),
        measured,
        proved,
        structural_hash: prog.stable_structural_hash(),
        top_blamed: run.report.entries.first().map(|e| e.name.clone()),
    }
}

/// Commit one sweep: the snapshot's artifacts plus a wall-clock
/// timing artifact (`timing_ns` measured, or overridden to inject a
/// synthetic regression).
fn commit_run(
    store: &RunStore,
    label: &str,
    snap: &Snapshot,
    timing_ns_override: Option<f64>,
) -> String {
    let timing_ns = timing_ns_override.unwrap_or_else(|| {
        // Min-of-3 wall time of a settle sweep: small but genuinely
        // noisy, which is what the sentinel is for.
        let prog = SettleProgram::compile(&generate::fig1().netlist).expect("fig1 compiles");
        let pats = LanePatterns::broadcast(&prog);
        (0..3)
            .map(|_| {
                let t = Instant::now();
                let _ = lip_sim::measure_batch_periodic(&generate::fig1().netlist, &pats, 2048)
                    .expect("fig1 measures");
                t.elapsed().as_nanos() as f64
            })
            .fold(f64::INFINITY, f64::min)
    });
    let timing_json = format!(
        "{{\"schema_version\": {}, \"kind\": \"timing\", \"sweep_ns\": {timing_ns}}}\n",
        lip_obs::schema::REPORT
    );
    let mut b = RunBuilder::new(label);
    b.add_artifact("BLAME_fig1.json", &snap.blame_json);
    b.add_artifact("CHECK_fig1.json", &snap.check_json);
    b.add_artifact("KERNEL_fig1.json", &snap.kernel_json);
    b.add_artifact("TIMING_fig1.json", &timing_json);
    b.commit(store).expect("run commits")
}

fn main() {
    banner(
        "EXP-D1",
        "cross-run differ: artifact store, blame attribution, regression sentinel",
        "an injected fifo-capacity downgrade on fig1 is flagged with the throughput delta attributed to the edited channel's blame shift, exact ratio diffs match the mc proofs, and identical re-runs diff clean",
    );

    // Fresh store per invocation: the self-test is deterministic.
    let _ = std::fs::remove_dir_all(STORE_ROOT);
    let store = RunStore::open(STORE_ROOT);
    let sentinel = Sentinel::default();

    // Baseline design: fig1 with the short-branch relay as Fifo(2) —
    // same capacity as the stock full relay, so T = 4/5, but on the
    // fifo table where PR 8's capacity patches apply.
    let fig = generate::fig1();
    let short: NodeId = fig.short_relays[0];
    let short_name = fig.netlist.node(short).name().to_owned();
    let mut baseline = fig.netlist.clone();
    baseline.set_relay_kind(short, RelayKind::Fifo(2));

    let base_snap = snapshot(&baseline);
    assert_eq!(base_snap.measured, Ratio::new(4, 5), "fig1 baseline is 4/5");

    // 1. Build timing history: four baseline sweeps. Exact artifacts
    //    are byte-identical; only the timing artifact varies, so each
    //    capture lands under its own content hash.
    let mut history_ids = Vec::new();
    for i in 0..8 {
        let id = commit_run(&store, &format!("baseline history {i}"), &base_snap, None);
        if !history_ids.contains(&id) {
            history_ids.push(id);
        }
        if history_ids.len() == 4 {
            break;
        }
    }
    assert!(
        history_ids.len() >= 2,
        "wall-clock jitter should spread capture ids"
    );

    // 2. Identical re-run: diff the last two baseline sweeps — clean.
    let rerun_id = commit_run(&store, "baseline re-run", &base_snap, None);
    let prev = store.load(history_ids.last().unwrap()).expect("prev loads");
    let rerun = store.load(&rerun_id).expect("re-run loads");
    let clean_diff = diff_runs(&store, &prev, &rerun, &sentinel);
    let rerun_clean = clean_diff.clean();
    println!("== identical re-run ==");
    print!("{}", clean_diff.render_human());

    // 3. Inject the regression through the incremental layer: the
    //    compiled program's capacity patch must agree (hash and all)
    //    with a cold compile of the edited netlist — that is how a
    //    stored diff pairs with a `NetlistDelta` edit.
    let mut patched = SettleProgram::compile(&baseline).expect("baseline compiles");
    let _patch = patched.patch_fifo_capacity(short, 1);
    let mut regressed = baseline.clone();
    regressed.set_relay_kind(short, RelayKind::Fifo(1));
    let cold = SettleProgram::compile(&regressed).expect("regressed compiles");
    let patch_pairs_with_delta = patched.stable_structural_hash() == cold.stable_structural_hash();
    assert!(patch_pairs_with_delta, "patched hash equals cold compile");

    let reg_snap = snapshot(&regressed);
    assert_ne!(
        reg_snap.measured, base_snap.measured,
        "capacity 1 regresses fig1"
    );
    let reg_id = commit_run(&store, "injected fifo downgrade", &reg_snap, None);
    let reg_run = store.load(&reg_id).expect("regressed run loads");
    let reg_diff = diff_runs(&store, &rerun, &reg_run, &sentinel);
    println!("== injected fifo-capacity downgrade (2 → 1) ==");
    print!("{}", reg_diff.render_human());

    let regression_flagged = !reg_diff.clean() && reg_diff.exact_diffs() > 0;
    // The proved and measured ratios both move, as exact diffs.
    let ratio_paths = ["measured.num", "measured.den", "proved.num", "proved.den"];
    let ratio_diffed = reg_diff
        .entries
        .iter()
        .filter(|e| e.artifact == "CHECK_fig1.json")
        .filter(|e| ratio_paths.contains(&e.path.as_str()))
        .count()
        >= 2;
    let hash_diffed = reg_diff
        .entries
        .iter()
        .any(|e| e.artifact == "CHECK_fig1.json" && e.path == "structural_hash");
    let kernel_diffed = reg_diff
        .entries
        .iter()
        .any(|e| e.artifact == "KERNEL_fig1.json" && e.path.starts_with("by_opcode["));
    // Attribution: the edited channel's relay gains the blame.
    let attributions = reg_diff.attributions();
    let attributed = attributions
        .first()
        .map(|s| s.name.clone())
        .unwrap_or_default();
    let attribution_ok = attributed == short_name;
    // And the diff's ratio values agree with what lip-mc proves on
    // each side.
    let mc_agrees = base_snap.proved == base_snap.measured
        && reg_snap.proved == reg_snap.measured
        && base_snap.structural_hash != reg_snap.structural_hash;

    // 4. Synthetic timing regression: identical exact artifacts, 20×
    //    the wall clock. Only the sentinel should fire.
    let inflated = {
        let hist_median = 20.0 * 1_000_000.0; // 20ms: far outside any band here
        commit_run(
            &store,
            "injected timing spike",
            &base_snap,
            Some(hist_median),
        )
    };
    let inflated_run = store.load(&inflated).expect("timing run loads");
    let timing_diff = diff_runs(&store, &rerun, &inflated_run, &sentinel);
    let timing_flagged = timing_diff.timing_regressions() >= 1 && timing_diff.exact_diffs() == 0;
    println!("== injected timing spike ==");
    print!("{}", timing_diff.render_human());

    let runs_stored = store.list().expect("store lists").len() as u64;
    let ok = rerun_clean
        && regression_flagged
        && ratio_diffed
        && hash_diffed
        && kernel_diffed
        && attribution_ok
        && patch_pairs_with_delta
        && mc_agrees
        && timing_flagged;

    println!("== verdict ==");
    println!(
        "{}",
        table(
            &["check", "result"],
            &[
                vec![
                    "identical re-run diffs clean".into(),
                    mark(rerun_clean).into()
                ],
                vec!["regression flagged".into(), mark(regression_flagged).into()],
                vec![
                    "ratio moved as exact diff".into(),
                    mark(ratio_diffed).into()
                ],
                vec!["structural hash moved".into(), mark(hash_diffed).into()],
                vec![
                    "kernel tape delta per opcode".into(),
                    mark(kernel_diffed).into()
                ],
                vec![
                    format!("blame attributed to '{short_name}'"),
                    mark(attribution_ok).into()
                ],
                vec![
                    "patch pairs with NetlistDelta".into(),
                    mark(patch_pairs_with_delta).into()
                ],
                vec!["ratios match mc proofs".into(), mark(mc_agrees).into()],
                vec![
                    "timing spike trips sentinel".into(),
                    mark(timing_flagged).into()
                ],
            ],
        )
    );

    // BENCH_delta.json — jq-gated in CI.
    let bench = Json::Obj(vec![
        (
            "schema_version".into(),
            Json::Int(i64::from(lip_obs::schema::DELTA)),
        ),
        ("experiment".into(), Json::Str("exp_delta".into())),
        ("store".into(), Json::Str(STORE_ROOT.into())),
        ("runs_stored".into(), Json::Int(runs_stored as i64)),
        ("rerun_clean".into(), Json::Bool(rerun_clean)),
        ("regression_flagged".into(), Json::Bool(regression_flagged)),
        (
            "regression_exact_diffs".into(),
            Json::Int(reg_diff.exact_diffs() as i64),
        ),
        (
            "ratio_before".into(),
            lip_delta::parse(&ratio_json(base_snap.measured)).expect("ratio json"),
        ),
        (
            "ratio_after".into(),
            lip_delta::parse(&ratio_json(reg_snap.measured)).expect("ratio json"),
        ),
        ("attributed_channel".into(), Json::Str(attributed.clone())),
        ("attribution_expected".into(), Json::Str(short_name.clone())),
        ("attribution_ok".into(), Json::Bool(attribution_ok)),
        ("mc_agrees".into(), Json::Bool(mc_agrees)),
        (
            "timing_regression_flagged".into(),
            Json::Bool(timing_flagged),
        ),
        ("ok".into(), Json::Bool(ok)),
    ]);
    std::fs::write("BENCH_delta.json", bench.to_compact() + "\n").expect("write BENCH_delta.json");
    println!("wrote BENCH_delta.json");

    let mut report = Report::new("exp_delta");
    report
        .push_int("runs_stored", runs_stored)
        .push_bool("rerun_clean", rerun_clean)
        .push_bool("regression_flagged", regression_flagged)
        .push_ratio(
            "throughput_before",
            base_snap.measured.num(),
            base_snap.measured.den(),
        )
        .push_ratio(
            "throughput_after",
            reg_snap.measured.num(),
            reg_snap.measured.den(),
        )
        .push_str("attributed_channel", &attributed)
        .push_str("top_blamed_after", reg_snap.top_blamed())
        .push_bool("attribution_ok", attribution_ok)
        .push_bool("mc_agrees", mc_agrees)
        .push_bool("timing_regression_flagged", timing_flagged)
        .push_bool("ok", ok);
    emit_report(&report);
    assert!(ok, "EXP-D1 end-to-end checks failed");
}
