//! EXP-T7 — transient length: "after a number of clock cycles that are
//! dependent on the system each part of it behaves in a periodic
//! fashion. ... the transient length is related to the number of relay
//! stations and shells, and can be predicted upfront."

use lip_analysis::transient_bound;
use lip_bench::{banner, emit_report, mark, table, Report};
use lip_core::RelayKind;
use lip_graph::generate;
use lip_sim::measure::find_periodicity;
use lip_sim::System;

fn main() {
    banner(
        "EXP-T7",
        "transient length vs the upfront bound",
        "the control state becomes periodic within a bound computable from shell/relay counts",
    );

    let mut rows = Vec::new();
    let mut within_bound = 0u64;
    let mut case = |name: String, netlist: &lip_graph::Netlist| {
        let bound = transient_bound(netlist);
        let mut sys = System::new(netlist).expect("elaborates");
        let p = find_periodicity(&mut sys, 100_000).expect("periodic environment");
        within_bound += u64::from(p.transient <= bound);
        rows.push(vec![
            name,
            netlist.census().shells.to_string(),
            netlist.census().relays().to_string(),
            p.transient.to_string(),
            p.period.to_string(),
            bound.to_string(),
            mark(p.transient <= bound).into(),
        ]);
    };

    case("Fig. 1 fork-join".into(), &generate::fig1().netlist);
    for (s, r) in [(2usize, 1usize), (3, 2), (4, 4)] {
        case(
            format!("ring({s},{r})"),
            &generate::ring(s, r, RelayKind::Full).netlist,
        );
    }
    for (d, f, r) in [(2usize, 2usize, 1usize), (3, 2, 2)] {
        case(
            format!("tree({d},{f},{r})"),
            &generate::tree(d, f, r).netlist,
        );
    }
    for (l, s, rs, rr) in [(2usize, 1usize, 2usize, 1usize), (3, 1, 1, 2)] {
        case(
            format!("composed({l},{s},{rs},{rr})"),
            &generate::composed(l, s, rs, rr).netlist,
        );
    }
    for seed in 0..12u64 {
        let (fam, netlist) = generate::random_family(seed);
        if netlist.validate().is_ok() {
            case(format!("random {fam:?} #{seed}"), &netlist);
        }
    }

    println!(
        "{}",
        table(
            &[
                "system",
                "shells",
                "relays",
                "transient",
                "period",
                "bound",
                "check"
            ],
            &rows
        )
    );
    println!("every system goes periodic within the upfront bound");

    let systems = rows.len() as u64;
    let mut report = Report::new("exp_transient");
    report
        .push_int("systems", systems)
        .push_int("within_bound", within_bound)
        .push_bool("ok", within_bound == systems);
    emit_report(&report);
}
