//! EXP-T4 — compositions: "the most general topology is a feed-forward
//! combination of self-interacting loops. It is possible to prove that
//! the slowest subtopology ... will force the system to slow down to its
//! speed. The protocol itself will adapt to such a speed without any
//! need for path equalization."

use lip_analysis::{loop_throughput, predict_throughput, reconvergent_throughput};
use lip_bench::{banner, emit_report, mark, table, Report};
use lip_graph::generate;
use lip_sim::measure;

fn main() {
    banner(
        "EXP-T4",
        "composed systems: slowest sub-topology dictates the speed",
        "system T = min(front-end T, loop T); no equalization needed — the protocol adapts",
    );

    let mut rows = Vec::new();
    let mut model_mismatches = 0u64;
    for (long, short, ring_s, ring_r) in [
        (2usize, 1usize, 1usize, 2usize), // slow ring dominates
        (2, 1, 2, 1),                     // comparable
        (3, 0, 2, 1),                     // slow front-end? vs 2/3 ring
        (1, 1, 1, 3),                     // very slow ring
        (3, 1, 3, 1),                     // front-end 5/7 vs ring 3/4
        (2, 2, 2, 2),                     // balanced front-end, ring 1/2
    ] {
        let c = generate::composed(long, short, ring_s, ring_r);
        // Sub-topology speeds: the front-end fork feeds the ring through
        // independent sources here, so its reconvergence decouples; the
        // binding constraints are the ring and any front-end imbalance
        // loop. The general model handles it all:
        let predicted = predict_throughput(&c.netlist).expect("periodic");
        let ring_t = loop_throughput(ring_s, ring_r);
        let front_t = reconvergent_throughput(long + short, 1, long.abs_diff(short));
        let measured = measure(&c.netlist)
            .expect("composition measures")
            .system_throughput()
            .expect("one sink");
        let min_sub = if ring_t.to_f64() <= front_t.to_f64() {
            ring_t
        } else {
            front_t
        };
        model_mismatches += u64::from(measured != predicted);
        rows.push(vec![
            format!("fork({long},{short}) -> ring({ring_s},{ring_r})"),
            front_t.to_string(),
            ring_t.to_string(),
            min_sub.to_string(),
            predicted.to_string(),
            measured.to_string(),
            mark(measured == predicted).into(),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "composition",
                "front T",
                "loop T",
                "min",
                "model",
                "measured",
                "check"
            ],
            &rows
        )
    );
    println!("(the model column is the marked-graph minimum cycle ratio: it always");
    println!(" matches simulation; `min` is the coarse two-formula bound — the binding");
    println!(" sub-topology. Independent sources decouple the front-end, so when the");
    println!(" ring is the slowest cycle the bound is tight.)");
    println!();

    // Coupled compositions: a *binding* fork-join front-end. Now the
    // min() of the two closed forms is exact.
    let decoupled = rows.len() as u64;
    let mut rows = Vec::new();
    let mut min_mismatches = 0u64;
    for (r1, r2, s, rs_, rr) in [
        (1usize, 1usize, 1usize, 1usize, 2usize), // ring 1/3 slowest
        (2, 2, 1, 2, 1),                          // front 4/7 vs ring 2/3
        (1, 1, 1, 3, 1),                          // front 4/5 vs ring 3/4
        (2, 1, 1, 4, 1),                          // front 4/6 vs ring 4/5
        (1, 1, 2, 1, 1),                          // balanced front vs ring 1/2
    ] {
        let c = generate::composed_coupled(r1, r2, s, rs_, rr);
        let front = {
            let long = r1 + r2;
            let (m, i) = if long >= s {
                ((long + s + 2) as u64, (long - s) as u64)
            } else {
                ((long + s + 1) as u64, (s - long) as u64)
            };
            reconvergent_throughput(
                usize::try_from(m).expect("fits") - 2,
                2,
                usize::try_from(i).expect("fits"),
            )
        };
        let ring_t = loop_throughput(rs_, rr);
        let min_sub = if ring_t.to_f64() <= front.to_f64() {
            ring_t
        } else {
            front
        };
        let measured = measure(&c.netlist)
            .expect("measures")
            .system_throughput()
            .expect("one sink");
        min_mismatches += u64::from(measured != min_sub);
        rows.push(vec![
            format!("forkjoin({r1},{r2},{s}) -> ring({rs_},{rr})"),
            front.to_string(),
            ring_t.to_string(),
            min_sub.to_string(),
            measured.to_string(),
            mark(measured == min_sub).into(),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "coupled composition",
                "front T",
                "loop T",
                "min",
                "measured",
                "check"
            ],
            &rows
        )
    );
    println!("with a binding (fork-join) front-end, min(sub-topology throughputs) is");
    println!("exact — the slowest sub-topology dictates the system speed, with no");
    println!("equalization applied anywhere");

    let mut report = Report::new("exp_composition");
    report
        .push_int("decoupled_compositions", decoupled)
        .push_int("coupled_compositions", rows.len() as u64)
        .push_int("model_mismatches", model_mismatches)
        .push_int("min_bound_mismatches", min_mismatches)
        .push_bool("ok", model_mismatches == 0 && min_mismatches == 0);
    emit_report(&report);
}
