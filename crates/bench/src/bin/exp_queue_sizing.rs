//! EXP-A3 — queue sizing (the paper's reference \[5\], Carloni &
//! Sangiovanni-Vincentelli DAC'00): instead of adding *stations* to the
//! short branch, deepen the one station already there.
//!
//! A capacity-`k` FIFO on the Fig. 1 short branch contributes `k` spaces
//! to the implicit loop at one cycle of backward latency, so
//! `T = min(1, (k + 2)/5)` — capacity 3 fully equalizes Fig. 1 with a
//! single station, where EXP-A1 needed an extra full station. Loops, by
//! contrast, are latency-bound: deepening their queues buys nothing,
//! exactly as `S/(S+R)` predicts.

use lip_analysis::{minimal_equalizing_capacity, predict_throughput};
use lip_bench::{banner, emit_report, mark, table, Report};
use lip_core::RelayKind;
use lip_graph::generate;
use lip_sim::{Ratio, ThroughputCache};

fn main() {
    banner(
        "EXP-A3",
        "queue sizing vs station insertion (Carloni DAC'00 baseline)",
        "reconvergence slack scales with queue capacity; loop throughput does not",
    );

    // All candidate configurations are measured through one memo table:
    // the capacity search below re-proposes structures this sweep
    // already simulated, and the cache turns those into lookups.
    let mut cache = ThroughputCache::new();

    // 1. Fig. 1 with the short-branch station resized.
    let mut rows = Vec::new();
    let mut fifo_mismatches = 0u64;
    for k in 2u8..=6 {
        let mut f = generate::fig1();
        f.netlist
            .set_relay_kind(f.short_relays[0], RelayKind::Fifo(k));
        f.netlist.validate().expect("legal");
        let predicted = predict_throughput(&f.netlist).expect("periodic");
        let measured = cache
            .measure(&f.netlist)
            .expect("measures")
            .system_throughput()
            .expect("one sink");
        let formula = Ratio::new(u64::from(k + 2).min(5), 5);
        fifo_mismatches += u64::from(measured != predicted || measured != formula);
        rows.push(vec![
            k.to_string(),
            k.to_string(),
            formula.to_string(),
            predicted.to_string(),
            measured.to_string(),
            mark(measured == predicted && measured == formula).into(),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "short-branch capacity",
                "registers",
                "(k+2)/5 cap 1",
                "model",
                "measured",
                "check"
            ],
            &rows
        )
    );
    println!("capacity 3 on the existing station equalizes Fig. 1 (T = 1/1) with one");
    println!("register fewer than inserting a second full station\n");

    // 2. Loops are latency-bound: queue depth is irrelevant.
    let fifo_rows = rows.len() as u64;
    let mut rows = Vec::new();
    let mut loop_mismatches = 0u64;
    for (s, r) in [(2usize, 1usize), (2, 2), (3, 2)] {
        for k in 2u8..=5 {
            let mut ring = generate::ring(s, r, RelayKind::Full);
            for relay in &ring.relays {
                ring.netlist.set_relay_kind(*relay, RelayKind::Fifo(k));
            }
            ring.netlist.validate().expect("legal");
            let measured = cache
                .measure(&ring.netlist)
                .expect("measures")
                .system_throughput()
                .expect("one sink");
            let formula = Ratio::new(s as u64, (s + r) as u64);
            loop_mismatches += u64::from(measured != formula);
            rows.push(vec![
                format!("ring({s},{r})"),
                k.to_string(),
                formula.to_string(),
                measured.to_string(),
                mark(measured == formula).into(),
            ]);
        }
    }
    println!(
        "{}",
        table(
            &["loop", "queue capacity", "S/(S+R)", "measured", "check"],
            &rows
        )
    );
    println!("loop throughput is set by tokens/latency, not by capacity — deepening");
    println!("queues cannot beat S/(S+R); only removing latency (or adding tokens)");
    println!("can, which is the content of the paper's feedback formula\n");

    // 3. The memoized bisection search lands on the same knee the sweep
    // shows — and every configuration it proposes is already cached, so
    // the search itself costs zero extra simulation.
    let misses_before_search = cache.misses();
    let f = generate::fig1();
    let choice = minimal_equalizing_capacity(&f.netlist, f.short_relays[0], 6, &mut cache)
        .expect("fig1 measures");
    let search_ok = choice.capacity == 3 && choice.throughput == Ratio::new(1, 1);
    let search_simulations = cache.misses() - misses_before_search;
    println!(
        "memoized bisection: minimal equalizing capacity {} at T = {} ({} new\n\
         simulations; {} cache hits over {} configurations)",
        choice.capacity,
        choice.throughput,
        search_simulations,
        cache.hits(),
        cache.len(),
    );

    let mut report = Report::new("exp_queue_sizing");
    report
        .push_int("fifo_configurations", fifo_rows)
        .push_int("loop_configurations", rows.len() as u64)
        .push_int("fifo_mismatches", fifo_mismatches)
        .push_int("loop_mismatches", loop_mismatches)
        .push_int("search_capacity", u64::from(choice.capacity))
        .push_int("search_simulations", search_simulations)
        .push_int("cache_hits", cache.hits())
        .push_int("cache_misses", cache.misses())
        .push_bool(
            "ok",
            fifo_mismatches == 0 && loop_mismatches == 0 && search_ok,
        );
    emit_report(&report);
}
