//! Shared helpers for the experiment binaries that regenerate every
//! figure and claim of Casu & Macchiarulo (DATE 2004).
//!
//! Each binary in `src/bin/` prints one paper artefact as a plain-text
//! table (see `EXPERIMENTS.md` for the index); the Criterion benches in
//! `benches/` cover the cost claims. These helpers keep the output
//! format uniform.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::path::PathBuf;

pub use lip_obs::Report;

/// Render a fixed-width text table: a header row, a rule, then rows.
/// Column widths adapt to content.
#[must_use]
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(out, "{h:>w$}  ");
    }
    out.push('\n');
    for w in &widths {
        let _ = write!(out, "{}  ", "-".repeat(*w));
    }
    out.push('\n');
    for row in rows {
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(out, "{cell:>w$}  ");
        }
        out.push('\n');
    }
    out
}

/// Print an experiment banner: id, paper artefact, and the claim.
pub fn banner(id: &str, artefact: &str, claim: &str) {
    println!("=== {id}: {artefact} ===");
    println!("paper claim: {claim}");
    println!();
}

/// Format a pass/fail marker for claim tables.
#[must_use]
pub fn mark(ok: bool) -> &'static str {
    if ok {
        "ok"
    } else {
        "MISMATCH"
    }
}

/// Directory where experiment [`Report`] JSON lands: `$LIP_REPORT_DIR`
/// if set, otherwise `target/reports` relative to the working
/// directory.
#[must_use]
pub fn report_dir() -> PathBuf {
    std::env::var_os("LIP_REPORT_DIR")
        .map_or_else(|| PathBuf::from("target/reports"), PathBuf::from)
}

/// Write `report` into [`report_dir`] (creating it) and print the
/// path, so `run_experiments.sh` and CI can pick the JSON up. Exits the
/// binary with a message on I/O failure — an experiment whose artefact
/// cannot be written has failed.
pub fn emit_report(report: &Report) {
    let dir = report_dir();
    match report.write_to(&dir) {
        Ok(path) => println!("report: {}", path.display()),
        Err(e) => {
            eprintln!("error: cannot write report to {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["a", "long_header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long_header"));
        assert!(lines[1].starts_with("---"));
    }

    #[test]
    fn marks() {
        assert_eq!(mark(true), "ok");
        assert_eq!(mark(false), "MISMATCH");
    }
}
