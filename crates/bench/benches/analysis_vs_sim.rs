//! EXP-C3 — what the closed forms buy: computing throughput by the
//! marked-graph model versus measuring it by simulation to steady state.
//!
//! The paper's point in providing formulas is that "precise calculations
//! of important design parameters" beat simulating; this bench records
//! the gap as systems grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lip_analysis::predict_throughput;
use lip_core::RelayKind;
use lip_graph::generate;
use lip_sim::measure;

fn bench_analysis_vs_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_vs_sim");
    let cases = [
        ("fig1", generate::fig1().netlist),
        ("ring4x4", generate::ring(4, 4, RelayKind::Full).netlist),
        ("ring8x8", generate::ring(8, 8, RelayKind::Full).netlist),
        ("composed", generate::composed(3, 1, 3, 2).netlist),
        ("tree3x2", generate::tree(3, 2, 2).netlist),
    ];
    for (name, netlist) in &cases {
        group.bench_with_input(BenchmarkId::new("model", name), netlist, |b, n| {
            b.iter(|| predict_throughput(n).expect("periodic"));
        });
        group.bench_with_input(BenchmarkId::new("simulate", name), netlist, |b, n| {
            b.iter(|| {
                measure(n)
                    .expect("measures")
                    .system_throughput()
                    .expect("one sink")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analysis_vs_sim);
criterion_main!(benches);
