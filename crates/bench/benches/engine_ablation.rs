//! EXP-C2 — substrate ablation: the same RTL design on the levelised
//! cycle engine, the VHDL-style event-driven engine, and the direct
//! protocol interpreter.
//!
//! The paper used an event-driven simulator; this bench records what
//! that choice costs/saves on LID workloads. Measured here: activity is
//! high (most channels toggle most cycles), so the event engine's wakeup
//! bookkeeping loses to the levelised schedule on every case; the
//! levelised RTL beats even the direct interpreter on small systems
//! (tight closures vs per-component vectors) and loses on long chains
//! (three signals per channel vs one token). See EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lip_core::RelayKind;
use lip_graph::generate;
use lip_kernel::{CycleEngine, Engine, EventEngine};
use lip_sim::rtl::elaborate_rtl;
use lip_sim::System;

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_ablation");
    let cases = [
        ("fig1", generate::fig1().netlist),
        ("chain16", generate::chain(16, 2, RelayKind::Full).netlist),
        ("ring8", generate::ring(8, 8, RelayKind::Full).netlist),
    ];
    for (name, netlist) in &cases {
        group.bench_with_input(BenchmarkId::new("interpreter", name), netlist, |b, n| {
            let mut sys = System::new(n).expect("elaborates");
            b.iter(|| {
                sys.run(100);
                sys.cycle()
            });
        });
        group.bench_with_input(BenchmarkId::new("rtl_cycle", name), netlist, |b, n| {
            let (circuit, _) = elaborate_rtl(n).expect("elaborates");
            let mut engine = CycleEngine::new(circuit);
            b.iter(|| {
                engine.run(100);
                engine.stats().cycles
            });
        });
        group.bench_with_input(BenchmarkId::new("rtl_event", name), netlist, |b, n| {
            let (circuit, _) = elaborate_rtl(n).expect("elaborates");
            let mut engine = EventEngine::new(circuit);
            b.iter(|| {
                engine.run(100);
                engine.stats().cycles
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
