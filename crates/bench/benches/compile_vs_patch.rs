//! EXP-I1 bench — per-edit latency of the incremental patch layer.
//!
//! Three legs per topology, all applying the same 64-edit capacity
//! schedule to one FIFO relay station:
//!
//! * `full_compile` — the pre-incremental edit loop: mutate the
//!   netlist, run [`SettleProgram::compile`] from scratch per edit;
//! * `capacity_patch` — [`SettleProgram::patch_fifo_capacity`]
//!   same-plane toggles (pure op-tape splices, O(1) hash update);
//! * `delta_kind` — [`SettleProgram::recompile_delta`] kind walks
//!   (`Fifo → Full → Fifo`), the in-place table-move path.
//!
//! Throughput is reported in edits/sec (`Throughput::Elements`), so
//! criterion's elem/s axis reads directly as edit-loop rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lip_core::RelayKind;
use lip_graph::{generate, Netlist, NodeId, NodeKind};
use lip_sim::{NetlistDelta, SettleProgram};

const EDITS: usize = 64;

fn corpus() -> Vec<(String, Netlist)> {
    vec![
        (
            "chain32x4".to_string(),
            generate::chain(32, 4, RelayKind::Fifo(3)).netlist,
        ),
        (
            "ring16x6".to_string(),
            generate::ring(16, 6, RelayKind::Fifo(3)).netlist,
        ),
    ]
}

fn first_fifo(netlist: &Netlist) -> NodeId {
    netlist
        .nodes()
        .find(|(_, node)| {
            matches!(
                node.kind(),
                NodeKind::Relay {
                    kind: RelayKind::Fifo(_)
                }
            )
        })
        .map(|(id, _)| id)
        .expect("corpus topologies have FIFO relays")
}

fn bench_compile_vs_patch(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_vs_patch");
    group.throughput(Throughput::Elements(EDITS as u64));
    for (name, netlist) in corpus() {
        let fifo = first_fifo(&netlist);
        group.bench_with_input(
            BenchmarkId::new("full_compile", &name),
            &netlist,
            |b, netlist| {
                let mut n = netlist.clone();
                b.iter(|| {
                    for i in 0..EDITS {
                        n.set_relay_kind(fifo, RelayKind::Fifo(if i % 2 == 0 { 2 } else { 3 }));
                        std::hint::black_box(SettleProgram::compile(&n).expect("compiles"));
                    }
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("capacity_patch", &name),
            &netlist,
            |b, netlist| {
                let mut prog = SettleProgram::compile(netlist).expect("compiles");
                b.iter(|| {
                    for i in 0..EDITS {
                        std::hint::black_box(
                            prog.patch_fifo_capacity(fifo, if i % 2 == 0 { 2 } else { 3 }),
                        );
                    }
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("delta_kind", &name),
            &netlist,
            |b, netlist| {
                let mut prog = SettleProgram::compile(netlist).expect("compiles");
                b.iter(|| {
                    for i in 0..EDITS {
                        let kind = if i % 2 == 0 {
                            RelayKind::Full
                        } else {
                            RelayKind::Fifo(3)
                        };
                        let delta = NetlistDelta::SetRelayKind { node: fifo, kind };
                        std::hint::black_box(prog.recompile_delta(&delta));
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_compile_vs_patch);
criterion_main!(benches);
