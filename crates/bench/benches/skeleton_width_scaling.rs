//! EXP-B2 bench — lane-width scaling of the many-lane engine.
//!
//! One benchmark per lane-word shape, W ∈ {1, 2, 4, 8, 16} words (64 to
//! 1024 lanes), on fig1 and the 4x4 full-relay ring. Throughput is
//! reported in elements = lane-cycles, so the per-width numbers compare
//! directly: a wider word wins exactly when its lane-cycles/sec beats
//! the narrower shapes. Engine construction is included, matching how a
//! throughput sweep actually uses the engine.

use std::sync::Arc;

use criterion::{
    criterion_group, criterion_main, BenchmarkGroup, BenchmarkId, Criterion, Throughput,
};
use lip_core::Pattern;
use lip_graph::{generate, Netlist};
use lip_sim::{
    BatchEngine, LanePatterns, LaneWord, Lanes1024, Lanes128, Lanes256, Lanes512, SettleProgram,
    LANES,
};

const CYCLES: u64 = 256;

/// Duty-ramp stall pattern for base lane `b`: a period-64 cyclic word
/// stalling `b` of every 64 cycles, spread evenly. Lane `l` of any
/// width replicates base scenario `l % 64`, so every width runs the
/// same work per lane.
fn duty_pattern(base: usize) -> Pattern {
    let bits: Vec<bool> = (0..64)
        .map(|c| (c + 1) * base / 64 > c * base / 64)
        .collect();
    Pattern::Cyclic(bits)
}

fn sweep_patterns(prog: &SettleProgram, lanes: usize) -> LanePatterns {
    let mut pats = LanePatterns::broadcast_wide(prog, lanes);
    for lane in 0..lanes {
        for j in 0..prog.sink_count() {
            pats.set_sink(j, lane, duty_pattern(lane % LANES));
        }
    }
    pats
}

fn corpus() -> Vec<(String, Netlist)> {
    vec![
        ("fig1".to_string(), generate::fig1().netlist),
        (
            "ring4x4_full".to_string(),
            generate::ring(4, 4, lip_core::RelayKind::Full).netlist,
        ),
    ]
}

/// Register the sweep at word shape `W` (one `w{words}x64` bench).
fn bench_width<W: LaneWord>(group: &mut BenchmarkGroup<'_>, name: &str, prog: &Arc<SettleProgram>) {
    let pats = sweep_patterns(prog, W::LANES);
    group.throughput(Throughput::Elements(W::LANES as u64 * CYCLES));
    group.bench_with_input(
        BenchmarkId::new(format!("w{}x64", W::WORDS), name),
        prog,
        |b, prog| {
            b.iter(|| {
                let mut engine = BatchEngine::<W>::from_patterns(Arc::clone(prog), &pats);
                engine.run_patterns(&pats, CYCLES);
                engine.total_fires_lane(0)
            });
        },
    );
}

fn bench_width_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("skeleton_width_scaling");
    for (name, netlist) in corpus() {
        let prog = Arc::new(SettleProgram::compile(&netlist).expect("compiles"));
        bench_width::<u64>(&mut group, &name, &prog);
        bench_width::<Lanes128>(&mut group, &name, &prog);
        bench_width::<Lanes256>(&mut group, &name, &prog);
        bench_width::<Lanes512>(&mut group, &name, &prog);
        bench_width::<Lanes1024>(&mut group, &name, &prog);
    }
    group.finish();
}

criterion_group!(benches, bench_width_scaling);
criterion_main!(benches);
