//! EXP-C1 — "we are allowed to simulate just the skeleton of the system
//! consisting of stop and valid signals, thus the simulation cost is
//! absolutely negligible."
//!
//! Compares, per simulated cycle, the full data simulation against the
//! skeleton over growing systems. The paper's shape claim: the skeleton
//! is uniformly cheaper, and the gap persists (or widens) with size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lip_core::RelayKind;
use lip_graph::generate;
use lip_sim::{SkeletonSystem, System};

fn bench_skeleton_vs_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("skeleton_vs_full");
    for shells in [4usize, 16, 64] {
        let chain = generate::chain(shells, 2, RelayKind::Full);
        group.bench_with_input(BenchmarkId::new("full", shells), &chain.netlist, |b, n| {
            let mut sys = System::new(n).expect("elaborates");
            b.iter(|| {
                sys.run(100);
                sys.total_received()
            });
        });
        group.bench_with_input(
            BenchmarkId::new("skeleton", shells),
            &chain.netlist,
            |b, n| {
                let mut sk = SkeletonSystem::new(n).expect("elaborates");
                b.iter(|| {
                    sk.run(100);
                    sk.cycle()
                });
            },
        );
    }
    // A cyclic system too: the deadlock-analysis use case.
    for (s, r) in [(4usize, 4usize), (8, 8)] {
        let ring = generate::ring(s, r, RelayKind::Full);
        let label = format!("ring{s}x{r}");
        group.bench_with_input(BenchmarkId::new("full", &label), &ring.netlist, |b, n| {
            let mut sys = System::new(n).expect("elaborates");
            b.iter(|| {
                sys.run(100);
                sys.total_fires()
            });
        });
        group.bench_with_input(
            BenchmarkId::new("skeleton", &label),
            &ring.netlist,
            |b, n| {
                let mut sk = SkeletonSystem::new(n).expect("elaborates");
                b.iter(|| {
                    sk.run(100);
                    sk.cycle()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_skeleton_vs_full);
criterion_main!(benches);
