//! EXP-B1 bench — scalar-vs-batched skeleton cycles/sec.
//!
//! One [`BatchSkeleton`] pass settles 64 independent stall scenarios in
//! word-parallel bitwise operations; the scalar baseline runs the same
//! 64 scenarios as separate [`SkeletonSystem`] instances over the same
//! compiled settle program. Both sides include engine construction so
//! the comparison matches how a throughput sweep actually uses them.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lip_core::Pattern;
use lip_graph::{generate, Netlist};
use lip_sim::{BatchSkeleton, LanePatterns, SettleProgram, SkeletonSystem, LANES};

const CYCLES: u64 = 256;

/// Per-lane stall ramp: lane `l` stalls its sinks `l/64` of the time.
fn sweep_patterns(prog: &SettleProgram) -> LanePatterns {
    let mut pats = LanePatterns::broadcast(prog);
    for lane in 0..LANES {
        for j in 0..prog.sink_count() {
            pats.set_sink(
                j,
                lane,
                Pattern::Random {
                    num: lane as u32,
                    denom: LANES as u32,
                    seed: 0xB0 ^ lane as u64,
                },
            );
        }
    }
    pats
}

fn corpus() -> Vec<(String, Netlist)> {
    let mut tops = vec![("fig1".to_string(), generate::fig1().netlist)];
    let mut seed = 0u64;
    while tops.len() < 4 {
        let (family, netlist) = generate::random_family(seed);
        if netlist.validate().is_ok() && netlist.shells().len() >= 2 {
            tops.push((format!("rand{seed}_{family:?}"), netlist));
        }
        seed += 1;
    }
    tops
}

fn bench_skeleton_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("skeleton_batch");
    for (name, netlist) in corpus() {
        let prog = Arc::new(SettleProgram::compile(&netlist).expect("compiles"));
        let pats = sweep_patterns(&prog);
        group.bench_with_input(BenchmarkId::new("scalar64", &name), &prog, |b, prog| {
            b.iter(|| {
                let mut total = 0u64;
                for _ in 0..LANES {
                    let mut sk = SkeletonSystem::from_program(Arc::clone(prog));
                    sk.run(CYCLES);
                    total += sk.total_fires();
                }
                total
            });
        });
        group.bench_with_input(BenchmarkId::new("batch", &name), &prog, |b, prog| {
            b.iter(|| {
                let mut bk = BatchSkeleton::from_patterns(Arc::clone(prog), &pats);
                bk.run_patterns(&pats, CYCLES);
                bk.total_fires_lane(0)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_skeleton_batch);
criterion_main!(benches);
