//! Deterministic fork-join parallelism for sweep workloads, with no
//! dependencies beyond `std`.
//!
//! The exploration and measurement layers all share one shape of work: a
//! corpus of independent items (topologies, walkers, environment shards)
//! each needing the same pure function applied, with the results
//! combined afterwards. [`par_map`] runs that shape across threads using
//! a scoped work-stealing scheme over [`std::thread::scope`]: every
//! worker repeatedly steals the next unclaimed item from a shared
//! queue-head counter, so load balances itself even when item costs are
//! wildly uneven (a deep random netlist next to a two-node chain), and
//! no worker ever idles while work remains.
//!
//! # Determinism contract
//!
//! `par_map(items, f)` returns exactly `items.iter().map(f).collect()`
//! — results land in input order, and as long as `f` is a pure function
//! of its arguments the output is **byte-identical for every worker
//! count**, including `LIP_JOBS=1`. Scheduling only decides *which
//! thread* computes an item, never *what* is computed or *where* the
//! result goes. The test suite pins this by comparing serial and
//! 8-worker runs bit for bit (including emitted report JSON).
//!
//! Worker count: explicit via the `*_jobs` variants, or ambient via
//! [`jobs`] — the `LIP_JOBS` environment variable when set (and
//! non-zero), otherwise [`std::thread::available_parallelism`].
//!
//! Panics in `f` are propagated to the caller with the original payload
//! after all workers have unwound (the scope joins them), so a failing
//! sweep item fails the sweep loudly instead of being dropped.
//!
//! # Observability
//!
//! When an ambient [`lip_obs::FlightRecorder`] is installed
//! ([`lip_obs::flight::install`]), every spawned worker records a
//! `par`-category `worker` span covering its whole steal loop and each
//! executed item bumps the `par.items` counter — so a sweep's runtime
//! report shows how wall-clock spread across workers. With no recorder
//! installed the cost is one relaxed atomic load per worker plus one
//! per item.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Ambient worker count: `LIP_JOBS` when set to a positive integer,
/// otherwise [`std::thread::available_parallelism`] (1 when even that
/// is unknown).
#[must_use]
pub fn jobs() -> usize {
    match std::env::var("LIP_JOBS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => default_jobs(),
        },
        Err(_) => default_jobs(),
    }
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// [`par_map`] with an explicit worker count (used by the determinism
/// suite; sweeps normally take the ambient [`jobs`]).
pub fn par_map_jobs<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed_jobs(workers, items, |_, t| f(t))
}

/// Apply `f` to every item of `items` across the ambient [`jobs`]
/// worker count, returning results in input order (see the
/// [module docs](self) for the determinism contract).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_jobs(jobs(), items, f)
}

/// [`par_map`] whose function also receives the item index — the hook
/// for deterministic per-item seeding (walker `i` derives its RNG from
/// `i`, never from claim order).
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_indexed_jobs(jobs(), items, f)
}

/// [`par_map_indexed`] with an explicit worker count.
///
/// # Panics
///
/// Re-raises the first worker panic (after every worker has unwound).
pub fn par_map_indexed_jobs<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let r = f(i, t);
                lip_obs::flight::global_add("par.items", 1);
                r
            })
            .collect();
    }
    // Shared queue head: claiming an index is the steal. Each worker
    // keeps its results tagged with their indices; the scatter below
    // restores input order regardless of which worker computed what.
    let head = AtomicUsize::new(0);
    let f = &f;
    let head = &head;
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    let worker_results: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let _worker_span = lip_obs::flight::global_span("par", "worker");
                    let mut out = Vec::new();
                    loop {
                        let i = head.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i, &items[i])));
                        lip_obs::flight::global_add("par.items", 1);
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    for (i, r) in worker_results.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "index {i} claimed twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect()
}

/// Fold `items` in parallel: map with `f` across workers, then reduce
/// the per-item results **in input order** with `merge` — the shape
/// that keeps merged counters (metrics registries, reports) identical
/// for every worker count.
pub fn par_fold<T, R, F, M>(items: &[T], f: F, init: R, mut merge: M) -> R
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
    M: FnMut(R, R) -> R,
{
    par_map(items, f).into_iter().fold(init, &mut merge)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        for workers in [1, 2, 8] {
            let out = par_map_jobs(workers, &items, |&x| x * x);
            let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expected, "workers = {workers}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(par_map_jobs(8, &none, |&x| x).is_empty());
        assert_eq!(par_map_jobs(8, &[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn indexed_variant_passes_stable_indices() {
        let items = vec!["a", "b", "c", "d"];
        let out = par_map_indexed_jobs(3, &items, |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c", "3:d"]);
    }

    #[test]
    fn uneven_work_is_balanced_and_ordered() {
        // Early items cost far more than late ones; order must hold.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map_jobs(4, &items, |&x| {
            let spin = if x < 4 { 200_000 } else { 10 };
            let mut acc = x;
            for _ in 0..spin {
                acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            }
            std::hint::black_box(acc);
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn fold_merges_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let concat = par_fold(
            &items,
            |&x| vec![x],
            Vec::new(),
            |mut acc: Vec<u64>, mut r| {
                acc.append(&mut r);
                acc
            },
        );
        assert_eq!(concat, items);
    }

    #[test]
    #[should_panic(expected = "sweep item 13 failed")]
    fn worker_panics_propagate() {
        let items: Vec<u64> = (0..64).collect();
        let _ = par_map_jobs(4, &items, |&x| {
            assert!(x != 13, "sweep item {x} failed");
            x
        });
    }

    #[test]
    fn jobs_is_at_least_one() {
        assert!(jobs() >= 1);
    }

    #[test]
    fn installed_recorder_sees_worker_spans_and_item_counts() {
        use lip_obs::flight;
        // The ambient recorder is process-global; this is the only test
        // in the crate touching it, so no cross-test serialization is
        // needed here.
        let rec = lip_obs::FlightRecorder::new();
        flight::install(&rec);
        let items: Vec<u64> = (0..40).collect();
        let out = par_map_jobs(4, &items, |&x| x + 1);
        // Serial path counts items too.
        let solo = par_map_jobs(1, &items, |&x| x + 1);
        flight::uninstall();
        assert_eq!(out, solo);
        let dump = rec.drain();
        let workers = dump.spans.iter().filter(|s| s.cat == "par").count();
        assert_eq!(workers, 4, "one span per spawned worker");
        assert_eq!(dump.counters["par.items"], 80, "both runs counted");
        // Uninstalled: no further recording.
        let _ = par_map_jobs(2, &items, |&x| x);
        assert_eq!(rec.drain().counters.get("par.items"), None);
    }
}
