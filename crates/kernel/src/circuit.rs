//! Elaborated circuits: validated netlists with a combinational schedule.

use std::collections::HashMap;

use crate::error::BuildCircuitError;
use crate::process::{ProcessDecl, ProcessId};
use crate::signal::{SignalId, SignalInfo, SignalKind};

/// An elaborated, runnable circuit.
///
/// Produced by [`CircuitBuilder::build`](crate::CircuitBuilder::build);
/// consumed by the engines in [`engine`](crate::engine). Elaboration
/// validates driver rules and levelises the combinational processes, which
/// rejects combinational loops — the kernel-level expression of the
/// paper's requirement that every cyclic stop/valid path be cut by at
/// least one register.
#[derive(Debug)]
pub struct Circuit {
    pub(crate) signals: Vec<SignalInfo>,
    pub(crate) processes: Vec<ProcessDecl>,
    /// Combinational processes in dependency (topological) order.
    pub(crate) comb_order: Vec<ProcessId>,
    /// Sequential processes, in declaration order.
    pub(crate) seq_order: Vec<ProcessId>,
    /// For each signal, the combinational processes sensitive to it.
    pub(crate) sensitivity: Vec<Vec<ProcessId>>,
}

impl Circuit {
    pub(crate) fn elaborate(
        signals: Vec<SignalInfo>,
        processes: Vec<ProcessDecl>,
    ) -> Result<Self, BuildCircuitError> {
        for info in &signals {
            if info.width == 0 || info.width > 64 {
                return Err(BuildCircuitError::InvalidWidth {
                    signal: info.name.clone(),
                    width: info.width,
                });
            }
        }

        // Driver discipline.
        let mut wire_driver: HashMap<usize, usize> = HashMap::new();
        for (pi, p) in processes.iter().enumerate() {
            for &w in &p.writes {
                let kind = signals[w.index()].kind;
                match (&p.behaviour, kind) {
                    (crate::process::Behaviour::Comb(_), SignalKind::Register) => {
                        return Err(BuildCircuitError::CombDrivesRegister {
                            signal: signals[w.index()].name.clone(),
                            process: p.name.clone(),
                        });
                    }
                    (crate::process::Behaviour::Seq(_), SignalKind::Wire) => {
                        return Err(BuildCircuitError::SeqDrivesWire {
                            signal: signals[w.index()].name.clone(),
                            process: p.name.clone(),
                        });
                    }
                    (crate::process::Behaviour::Comb(_), SignalKind::Wire) => {
                        if let Some(&prev) = wire_driver.get(&w.index()) {
                            return Err(BuildCircuitError::MultipleDrivers {
                                signal: signals[w.index()].name.clone(),
                                drivers: (processes[prev].name.clone(), p.name.clone()),
                            });
                        }
                        wire_driver.insert(w.index(), pi);
                    }
                    (crate::process::Behaviour::Seq(_), SignalKind::Register) => {}
                }
            }
        }

        // Levelise combinational processes: edge p -> q when p writes a
        // wire q reads. Kahn's algorithm; leftovers mean a loop.
        let comb_ids: Vec<usize> = processes
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_comb())
            .map(|(i, _)| i)
            .collect();
        let mut successors: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut indegree: HashMap<usize, usize> = comb_ids.iter().map(|&i| (i, 0)).collect();
        for &pi in &comb_ids {
            for &r in &processes[pi].reads {
                if signals[r.index()].kind == SignalKind::Wire {
                    if let Some(&src) = wire_driver.get(&r.index()) {
                        if src != pi {
                            successors.entry(src).or_default().push(pi);
                            *indegree.get_mut(&pi).expect("comb process") += 1;
                        }
                    }
                }
            }
        }
        let mut ready: Vec<usize> = comb_ids
            .iter()
            .copied()
            .filter(|i| indegree[i] == 0)
            .collect();
        // Deterministic schedule: lowest declaration index first.
        ready.sort_unstable();
        let mut comb_order = Vec::with_capacity(comb_ids.len());
        let mut queue = std::collections::VecDeque::from(ready);
        while let Some(pi) = queue.pop_front() {
            comb_order.push(ProcessId(u32::try_from(pi).expect("process index")));
            if let Some(succs) = successors.get(&pi) {
                for &s in succs {
                    let d = indegree.get_mut(&s).expect("comb process");
                    *d -= 1;
                    if *d == 0 {
                        queue.push_back(s);
                    }
                }
            }
        }
        if comb_order.len() != comb_ids.len() {
            let stuck: Vec<String> = comb_ids
                .iter()
                .filter(|i| indegree[i] > 0)
                .map(|&i| processes[i].name.clone())
                .collect();
            return Err(BuildCircuitError::CombinationalLoop { processes: stuck });
        }

        let seq_order: Vec<ProcessId> = processes
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.is_comb())
            .map(|(i, _)| ProcessId(u32::try_from(i).expect("process index")))
            .collect();

        let mut sensitivity: Vec<Vec<ProcessId>> = vec![Vec::new(); signals.len()];
        for (pi, p) in processes.iter().enumerate() {
            if p.is_comb() {
                for &r in &p.reads {
                    sensitivity[r.index()]
                        .push(ProcessId(u32::try_from(pi).expect("process index")));
                }
            }
        }

        Ok(Circuit {
            signals,
            processes,
            comb_order,
            seq_order,
            sensitivity,
        })
    }

    /// Number of declared signals.
    #[must_use]
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// Number of declared processes (combinational + sequential).
    #[must_use]
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// Metadata for `sig`.
    ///
    /// # Panics
    ///
    /// Panics if `sig` belongs to a different circuit.
    #[must_use]
    pub fn signal_info(&self, sig: SignalId) -> &SignalInfo {
        &self.signals[sig.index()]
    }

    /// Iterate over `(id, info)` for every signal, in declaration order.
    pub fn signals(&self) -> impl Iterator<Item = (SignalId, &SignalInfo)> {
        self.signals
            .iter()
            .enumerate()
            .map(|(i, info)| (SignalId(u32::try_from(i).expect("signal index")), info))
    }

    /// Initial value vector (cycle-zero state).
    #[must_use]
    pub(crate) fn initial_values(&self) -> Vec<u64> {
        self.signals.iter().map(SignalInfo::init).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;

    #[test]
    fn rejects_combinational_loop() {
        let mut b = CircuitBuilder::new();
        let a = b.wire("a", 1, 0);
        let y = b.wire("y", 1, 0);
        b.comb("p", &[a], &[y], |_| {});
        b.comb("q", &[y], &[a], |_| {});
        match b.build() {
            Err(BuildCircuitError::CombinationalLoop { processes }) => {
                assert_eq!(processes.len(), 2);
            }
            other => panic!("expected loop error, got {other:?}"),
        }
    }

    #[test]
    fn register_breaks_loop() {
        let mut b = CircuitBuilder::new();
        let r = b.register("r", 1, 0);
        let y = b.wire("y", 1, 0);
        b.comb("p", &[r], &[y], |_| {});
        b.seq("q", &[y], &[r], |_| {});
        assert!(b.build().is_ok());
    }

    #[test]
    fn rejects_multiple_drivers() {
        let mut b = CircuitBuilder::new();
        let y = b.wire("y", 1, 0);
        b.comb("p", &[], &[y], |_| {});
        b.comb("q", &[], &[y], |_| {});
        assert!(matches!(
            b.build(),
            Err(BuildCircuitError::MultipleDrivers { .. })
        ));
    }

    #[test]
    fn rejects_comb_driving_register() {
        let mut b = CircuitBuilder::new();
        let r = b.register("r", 1, 0);
        b.comb("p", &[], &[r], |_| {});
        assert!(matches!(
            b.build(),
            Err(BuildCircuitError::CombDrivesRegister { .. })
        ));
    }

    #[test]
    fn rejects_seq_driving_wire() {
        let mut b = CircuitBuilder::new();
        let w = b.wire("w", 1, 0);
        b.seq("p", &[], &[w], |_| {});
        assert!(matches!(
            b.build(),
            Err(BuildCircuitError::SeqDrivesWire { .. })
        ));
    }

    #[test]
    fn rejects_zero_width() {
        let mut b = CircuitBuilder::new();
        b.wire("w", 0, 0);
        assert!(matches!(
            b.build(),
            Err(BuildCircuitError::InvalidWidth { .. })
        ));
    }

    #[test]
    fn comb_order_respects_dependencies() {
        let mut b = CircuitBuilder::new();
        let a = b.wire("a", 1, 0);
        let mid = b.wire("mid", 1, 0);
        let out = b.wire("out", 1, 0);
        // Declared consumer-first to force the scheduler to reorder.
        let late = b.comb("late", &[mid], &[out], |_| {});
        let early = b.comb("early", &[a], &[mid], |_| {});
        let c = b.build().unwrap();
        let pos = |p| c.comb_order.iter().position(|&q| q == p).unwrap();
        assert!(pos(early) < pos(late));
    }

    #[test]
    fn signal_iteration_matches_declarations() {
        let mut b = CircuitBuilder::new();
        b.wire("a", 1, 0);
        b.register("r", 2, 1);
        let c = b.build().unwrap();
        let names: Vec<&str> = c.signals().map(|(_, info)| info.name()).collect();
        assert_eq!(names, ["a", "r"]);
        assert_eq!(c.signal_count(), 2);
        assert_eq!(c.process_count(), 0);
    }
}
