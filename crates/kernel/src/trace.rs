//! Per-cycle change recording and VCD export.
//!
//! The paper presents its results as cycle-by-cycle evolutions (Fig. 1 and
//! Fig. 2). [`Trace`] records, for every simulated cycle, which signals
//! changed and their new values — enough to reconstruct the full waveform —
//! and can serialise the result as a Value Change Dump for any standard
//! waveform viewer.

use std::fmt::Write as _;

use crate::circuit::Circuit;
use crate::error::TraceError;
use crate::signal::SignalId;

/// One recorded change: at the captured cycle, `signal` became `value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Change {
    /// The signal that changed.
    pub signal: SignalId,
    /// Its new value.
    pub value: u64,
}

/// A recorded waveform: initial values plus per-cycle change lists.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// `(cycle, changes)` pairs, in increasing cycle order.
    cycles: Vec<(u64, Vec<Change>)>,
    /// Last known value per signal while recording.
    shadow: Vec<u64>,
    started: bool,
}

impl Trace {
    /// Create an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the state of `circuit` at `cycle`. Called by the engines
    /// once per cycle, after combinational settling and before the edge;
    /// external recorders (e.g. event sinks driving an observer circuit)
    /// may call it directly.
    ///
    /// # Errors
    ///
    /// The shadow vector that de-duplicates unchanged values is sized at
    /// the first capture, so the signal population must stay fixed while
    /// recording. A capture with a different signal count — a signal
    /// registered after recording started, or a `values` slice from a
    /// different circuit — previously mis-indexed the shadow silently;
    /// it now returns [`TraceError::ShadowSizeMismatch`]. A capture at a
    /// cycle not strictly after the previous one breaks `value_at`'s
    /// replay invariant and returns [`TraceError::NonMonotonicCycle`].
    pub fn record(
        &mut self,
        cycle: u64,
        circuit: &Circuit,
        values: &[u64],
    ) -> Result<(), TraceError> {
        if values.len() != circuit.signal_count() {
            return Err(TraceError::ShadowSizeMismatch {
                expected: circuit.signal_count(),
                got: values.len(),
            });
        }
        if !self.started {
            self.shadow = vec![u64::MAX; circuit.signal_count()];
            self.started = true;
        } else if values.len() != self.shadow.len() {
            return Err(TraceError::ShadowSizeMismatch {
                expected: self.shadow.len(),
                got: values.len(),
            });
        }
        if let Some(&(last, _)) = self.cycles.last() {
            if cycle <= last {
                return Err(TraceError::NonMonotonicCycle { last, got: cycle });
            }
        }
        let mut changes = Vec::new();
        for (i, &v) in values.iter().enumerate() {
            if self.shadow[i] != v {
                self.shadow[i] = v;
                changes.push(Change {
                    signal: SignalId(u32::try_from(i).expect("signal index")),
                    value: v,
                });
            }
        }
        self.cycles.push((cycle, changes));
        Ok(())
    }

    /// Number of recorded cycles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// `true` if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// Iterate over `(cycle, changes)` records.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[Change])> {
        self.cycles.iter().map(|(c, ch)| (*c, ch.as_slice()))
    }

    /// Value of `sig` at `cycle`, reconstructed from the change log.
    /// Returns `None` when `cycle` was not recorded.
    #[must_use]
    pub fn value_at(&self, sig: SignalId, cycle: u64) -> Option<u64> {
        if !self.cycles.iter().any(|(c, _)| *c == cycle) {
            return None;
        }
        let mut value = None;
        for (c, changes) in &self.cycles {
            if *c > cycle {
                break;
            }
            for ch in changes {
                if ch.signal == sig {
                    value = Some(ch.value);
                }
            }
        }
        value
    }

    /// Serialise the trace as a Value Change Dump.
    ///
    /// Signal names and widths come from `circuit`, which must be the one
    /// the trace was recorded from.
    #[must_use]
    pub fn to_vcd(&self, circuit: &Circuit) -> String {
        let mut out = String::new();
        out.push_str("$date reproduction run $end\n");
        out.push_str("$version lip-kernel $end\n");
        out.push_str("$timescale 1ns $end\n");
        out.push_str("$scope module lid $end\n");
        for (id, info) in circuit.signals() {
            let _ = writeln!(
                out,
                "$var wire {} {} {} $end",
                info.width(),
                vcd_ident(id),
                sanitize(info.name())
            );
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");
        for (cycle, changes) in &self.cycles {
            let _ = writeln!(out, "#{cycle}");
            for ch in changes {
                let width = circuit.signal_info(ch.signal).width();
                if width == 1 {
                    let _ = writeln!(out, "{}{}", ch.value & 1, vcd_ident(ch.signal));
                } else {
                    let _ = writeln!(out, "b{:b} {}", ch.value, vcd_ident(ch.signal));
                }
            }
        }
        out
    }
}

/// Short printable-ASCII identifier for a signal, as VCD requires.
fn vcd_ident(sig: SignalId) -> String {
    // Base-94 over the printable range '!'..='~'.
    let mut n = sig.index();
    let mut s = String::new();
    loop {
        let digit = u8::try_from(n % 94).expect("digit < 94");
        s.push(char::from(b'!' + digit));
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::engine::{CycleEngine, Engine};

    fn traced_counter() -> (CycleEngine, SignalId) {
        let mut b = CircuitBuilder::new();
        let r = b.register("count", 4, 0);
        b.seq("inc", &[r], &[r], move |ctx| {
            let v = ctx.get(r);
            ctx.set_next(r, v + 1);
        });
        let mut e = CycleEngine::new(b.build().unwrap());
        e.enable_trace();
        (e, r)
    }

    #[test]
    fn trace_records_every_cycle() {
        let (mut e, _) = traced_counter();
        e.run(5);
        assert_eq!(e.trace().unwrap().len(), 5);
        assert!(!e.trace().unwrap().is_empty());
    }

    #[test]
    fn value_at_reconstructs_history() {
        let (mut e, r) = traced_counter();
        e.run(6);
        let t = e.trace().unwrap();
        for cycle in 0..6 {
            assert_eq!(t.value_at(r, cycle), Some(cycle));
        }
        assert_eq!(t.value_at(r, 99), None);
    }

    #[test]
    fn vcd_output_is_wellformed() {
        let (mut e, _) = traced_counter();
        e.run(3);
        let vcd = e.trace().unwrap().to_vcd(e.circuit());
        assert!(vcd.contains("$enddefinitions $end"));
        assert!(vcd.contains("$var wire 4 ! count $end"));
        assert!(vcd.contains("#0"));
        assert!(vcd.contains("#2"));
    }

    #[test]
    fn vcd_ident_is_printable_and_unique() {
        let a = vcd_ident(SignalId(0));
        let b = vcd_ident(SignalId(93));
        let c = vcd_ident(SignalId(94));
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert!(c.len() >= 2);
        for ident in [a, b, c] {
            assert!(ident.chars().all(|ch| ('!'..='~').contains(&ch)));
        }
    }
}
