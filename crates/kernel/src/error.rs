//! Elaboration-time errors.

use std::error::Error;
use std::fmt;

/// Error returned by [`CircuitBuilder::build`](crate::CircuitBuilder::build)
/// when the declared netlist cannot be elaborated into a runnable circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildCircuitError {
    /// A combinational cycle was found: the named processes form a loop in
    /// the wire-dependency graph. In latency-insensitive terms this is the
    /// paper's minimum-memory violation — a stop/valid path that is not cut
    /// by any relay-station register.
    CombinationalLoop {
        /// Names of the processes participating in the loop.
        processes: Vec<String>,
    },
    /// Two combinational processes drive the same wire.
    MultipleDrivers {
        /// Name of the doubly-driven signal.
        signal: String,
        /// The two offending process names.
        drivers: (String, String),
    },
    /// A combinational process drives a register (registers may only be
    /// written by sequential processes).
    CombDrivesRegister {
        /// Name of the register.
        signal: String,
        /// Name of the offending combinational process.
        process: String,
    },
    /// A sequential process writes a plain wire (wires may only be driven
    /// combinationally or poked externally).
    SeqDrivesWire {
        /// Name of the wire.
        signal: String,
        /// Name of the offending sequential process.
        process: String,
    },
    /// A signal was declared with a width outside `1..=64`.
    InvalidWidth {
        /// Name of the signal.
        signal: String,
        /// The rejected width.
        width: u8,
    },
}

impl fmt::Display for BuildCircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildCircuitError::CombinationalLoop { processes } => {
                write!(
                    f,
                    "combinational loop through processes: {}",
                    processes.join(" -> ")
                )
            }
            BuildCircuitError::MultipleDrivers { signal, drivers } => {
                write!(
                    f,
                    "signal `{signal}` has multiple drivers: `{}` and `{}`",
                    drivers.0, drivers.1
                )
            }
            BuildCircuitError::CombDrivesRegister { signal, process } => {
                write!(
                    f,
                    "combinational process `{process}` drives register `{signal}`"
                )
            }
            BuildCircuitError::SeqDrivesWire { signal, process } => {
                write!(f, "sequential process `{process}` drives wire `{signal}`")
            }
            BuildCircuitError::InvalidWidth { signal, width } => {
                write!(
                    f,
                    "signal `{signal}` has invalid width {width} (expected 1..=64)"
                )
            }
        }
    }
}

impl Error for BuildCircuitError {}

/// Error returned by [`Trace::record`](crate::Trace::record) when a
/// capture would corrupt the recorded waveform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceError {
    /// The capture's signal count differs from the one the trace was
    /// started with. The change-detection shadow vector is sized at the
    /// first capture, so signals registered after recording starts (or a
    /// `values` slice from a different circuit) cannot be folded into an
    /// in-progress trace — previously this silently mis-indexed.
    ShadowSizeMismatch {
        /// Signal count the trace was started with.
        expected: usize,
        /// Signal count of the rejected capture.
        got: usize,
    },
    /// The capture's cycle is not strictly after the last recorded one,
    /// which would break `value_at`'s ordered-replay invariant.
    NonMonotonicCycle {
        /// Last recorded cycle.
        last: u64,
        /// The rejected capture's cycle.
        got: u64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::ShadowSizeMismatch { expected, got } => write!(
                f,
                "trace capture has {got} signals but recording started with {expected}; \
                 signals must be registered before recording starts"
            ),
            TraceError::NonMonotonicCycle { last, got } => write!(
                f,
                "trace capture at cycle {got} is not after last recorded cycle {last}"
            ),
        }
    }
}

impl Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = BuildCircuitError::CombinationalLoop {
            processes: vec!["a".into(), "b".into()],
        };
        assert_eq!(
            err.to_string(),
            "combinational loop through processes: a -> b"
        );

        let err = BuildCircuitError::MultipleDrivers {
            signal: "x".into(),
            drivers: ("p".into(), "q".into()),
        };
        assert!(err.to_string().contains("multiple drivers"));

        let err = BuildCircuitError::InvalidWidth {
            signal: "w".into(),
            width: 0,
        };
        assert!(err.to_string().contains("invalid width 0"));
    }
}
