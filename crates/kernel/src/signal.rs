//! Signal identities and metadata.

use std::fmt;

/// Handle to a signal declared on a [`CircuitBuilder`](crate::CircuitBuilder).
///
/// `SignalId`s are dense indices; they are only meaningful for the circuit
/// they were created on. Using an id from a different circuit panics when
/// first dereferenced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(pub(crate) u32);

impl SignalId {
    /// Dense index of this signal inside its circuit.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// How a signal obtains its value each cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalKind {
    /// Driven by exactly one combinational process (or poked externally if
    /// no process drives it).
    Wire,
    /// Holds state across clock edges; sequential processes write its
    /// next-cycle value.
    Register,
}

impl fmt::Display for SignalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignalKind::Wire => f.write_str("wire"),
            SignalKind::Register => f.write_str("register"),
        }
    }
}

/// Declaration-time metadata of a signal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SignalInfo {
    pub(crate) name: String,
    pub(crate) width: u8,
    pub(crate) init: u64,
    pub(crate) kind: SignalKind,
}

impl SignalInfo {
    /// Human-readable name given at declaration.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Bit width (1..=64). Values are masked to this width on every write.
    #[must_use]
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Value the signal holds at cycle zero.
    #[must_use]
    pub fn init(&self) -> u64 {
        self.init
    }

    /// Whether the signal is a wire or a register.
    #[must_use]
    pub fn kind(&self) -> SignalKind {
        self.kind
    }

    /// Mask for this signal's width.
    #[must_use]
    pub(crate) fn mask(&self) -> u64 {
        if self.width >= 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_covers_width() {
        let info = SignalInfo {
            name: "x".to_owned(),
            width: 3,
            init: 0,
            kind: SignalKind::Wire,
        };
        assert_eq!(info.mask(), 0b111);
    }

    #[test]
    fn mask_full_width() {
        let info = SignalInfo {
            name: "x".to_owned(),
            width: 64,
            init: 0,
            kind: SignalKind::Register,
        };
        assert_eq!(info.mask(), u64::MAX);
    }

    #[test]
    fn display_forms() {
        assert_eq!(SignalId(7).to_string(), "s7");
        assert_eq!(SignalKind::Wire.to_string(), "wire");
        assert_eq!(SignalKind::Register.to_string(), "register");
    }

    #[test]
    fn id_index_roundtrip() {
        assert_eq!(SignalId(42).index(), 42);
    }
}
