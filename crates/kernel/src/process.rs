//! Process declarations: the behavioural units of a circuit.

use std::fmt;

use crate::builder::{EdgeCtx, EvalCtx};
use crate::signal::SignalId;

/// Handle to a process declared on a
/// [`CircuitBuilder`](crate::CircuitBuilder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub(crate) u32);

impl ProcessId {
    /// Dense index of this process inside its circuit.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Behaviour of a process: combinational (settles within a cycle) or
/// sequential (fires on the clock edge).
pub(crate) enum Behaviour {
    Comb(Box<dyn FnMut(&mut EvalCtx<'_>)>),
    Seq(Box<dyn FnMut(&mut EdgeCtx<'_>)>),
}

impl fmt::Debug for Behaviour {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Behaviour::Comb(_) => f.write_str("Comb(..)"),
            Behaviour::Seq(_) => f.write_str("Seq(..)"),
        }
    }
}

/// A declared process: name, sensitivity (reads), drive set (writes) and
/// behaviour closure.
#[derive(Debug)]
pub(crate) struct ProcessDecl {
    pub(crate) name: String,
    pub(crate) reads: Vec<SignalId>,
    pub(crate) writes: Vec<SignalId>,
    pub(crate) behaviour: Behaviour,
}

impl ProcessDecl {
    pub(crate) fn is_comb(&self) -> bool {
        matches!(self.behaviour, Behaviour::Comb(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_display_and_index() {
        assert_eq!(ProcessId(3).to_string(), "p3");
        assert_eq!(ProcessId(3).index(), 3);
    }

    #[test]
    fn behaviour_debug_is_nonempty() {
        let b = Behaviour::Comb(Box::new(|_| {}));
        assert_eq!(format!("{b:?}"), "Comb(..)");
        let b = Behaviour::Seq(Box::new(|_| {}));
        assert_eq!(format!("{b:?}"), "Seq(..)");
    }
}
