//! Simulation engines: levelised cycle evaluation and event-driven deltas.
//!
//! Both engines implement [`Engine`] and produce identical cycle-level
//! behaviour on any legal [`Circuit`]. [`CycleEngine`] evaluates every
//! combinational process exactly once per clock in topological order;
//! [`EventEngine`] mimics a VHDL event-driven simulator with delta cycles,
//! evaluating only processes sensitised by actual signal changes. The
//! `engine_ablation` experiment in `lip-bench` compares their costs, which
//! backs the paper's remark that skeleton-level event-driven simulation is
//! "absolutely negligible" in cost.

use std::collections::VecDeque;

use crate::builder::{EdgeCtx, EvalCtx};
use crate::circuit::Circuit;
use crate::process::Behaviour;
use crate::signal::{SignalId, SignalKind};
use crate::trace::Trace;

/// Counters accumulated while simulating.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Clock cycles executed.
    pub cycles: u64,
    /// Combinational process evaluations performed.
    pub comb_evals: u64,
    /// Sequential process evaluations performed.
    pub seq_evals: u64,
    /// Delta iterations executed (event engine; one per cycle for the
    /// cycle engine).
    pub deltas: u64,
    /// Signal value changes observed.
    pub events: u64,
}

/// Common interface of the simulation engines.
pub trait Engine {
    /// Advance the simulation by one clock cycle.
    fn step(&mut self);

    /// Current value of `sig`.
    fn value(&self, sig: SignalId) -> u64;

    /// Externally drive an undriven wire before the next [`step`](Engine::step).
    ///
    /// # Panics
    ///
    /// Implementations panic if `sig` is not a wire.
    fn poke(&mut self, sig: SignalId, value: u64);

    /// Accumulated statistics.
    fn stats(&self) -> EngineStats;

    /// The circuit being simulated.
    fn circuit(&self) -> &Circuit;

    /// Current value of `sig` as a boolean (non-zero = `true`).
    fn value_bool(&self, sig: SignalId) -> bool {
        self.value(sig) != 0
    }

    /// Run `n` clock cycles.
    fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }
}

fn edge_phase(
    circuit: &mut Circuit,
    values: &mut [u64],
    next: &mut Vec<u64>,
    stats: &mut EngineStats,
    changed_regs: &mut Vec<SignalId>,
) {
    next.clear();
    next.extend_from_slice(values);
    for i in 0..circuit.seq_order.len() {
        let pid = circuit.seq_order[i];
        let p = &mut circuit.processes[pid.index()];
        if let Behaviour::Seq(f) = &mut p.behaviour {
            let mut ctx = EdgeCtx {
                infos: &circuit.signals,
                current: values,
                next,
            };
            f(&mut ctx);
            stats.seq_evals += 1;
        }
    }
    changed_regs.clear();
    for (i, info) in circuit.signals.iter().enumerate() {
        if info.kind() == SignalKind::Register && values[i] != next[i] {
            values[i] = next[i];
            changed_regs.push(SignalId(u32::try_from(i).expect("signal index")));
            stats.events += 1;
        }
    }
}

/// Levelised two-phase engine: one topological combinational pass per
/// cycle, then the clock edge.
///
/// # Example
///
/// ```
/// use lip_kernel::{CircuitBuilder, CycleEngine, Engine};
///
/// # fn main() -> Result<(), lip_kernel::BuildCircuitError> {
/// let mut b = CircuitBuilder::new();
/// let r = b.register("r", 8, 0);
/// b.seq("inc", &[r], &[r], move |ctx| {
///     let v = ctx.get(r);
///     ctx.set_next(r, v + 1);
/// });
/// let mut e = CycleEngine::new(b.build()?);
/// e.run(10);
/// assert_eq!(e.value(r), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CycleEngine {
    circuit: Circuit,
    values: Vec<u64>,
    next: Vec<u64>,
    stats: EngineStats,
    trace: Option<Trace>,
    scratch_regs: Vec<SignalId>,
}

impl CycleEngine {
    /// Create an engine over `circuit`, with all signals at their initial
    /// values.
    #[must_use]
    pub fn new(circuit: Circuit) -> Self {
        let values = circuit.initial_values();
        Self {
            circuit,
            values,
            next: Vec::new(),
            stats: EngineStats::default(),
            trace: None,
            scratch_regs: Vec::new(),
        }
    }

    /// Enable per-cycle change recording (see [`Trace`]).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Trace::new());
        }
    }

    /// The recorded trace, if tracing was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    fn comb_phase(&mut self) {
        for i in 0..self.circuit.comb_order.len() {
            let pid = self.circuit.comb_order[i];
            let p = &mut self.circuit.processes[pid.index()];
            if let Behaviour::Comb(f) = &mut p.behaviour {
                let mut ctx = EvalCtx {
                    infos: &self.circuit.signals,
                    values: &mut self.values,
                    changed: Vec::new(),
                };
                f(&mut ctx);
                self.stats.events += ctx.changed.len() as u64;
                self.stats.comb_evals += 1;
            }
        }
        self.stats.deltas += 1;
    }

    /// Settle combinational logic for the current cycle without advancing
    /// the clock. Useful for inspecting mid-cycle wire values in tests.
    pub fn settle(&mut self) {
        self.comb_phase();
    }
}

impl Engine for CycleEngine {
    fn step(&mut self) {
        self.comb_phase();
        if let Some(t) = &mut self.trace {
            t.record(self.stats.cycles, &self.circuit, &self.values)
                .expect("engine captures are sized and ordered by construction");
        }
        edge_phase(
            &mut self.circuit,
            &mut self.values,
            &mut self.next,
            &mut self.stats,
            &mut self.scratch_regs,
        );
        self.stats.cycles += 1;
    }

    fn value(&self, sig: SignalId) -> u64 {
        self.values[sig.index()]
    }

    fn poke(&mut self, sig: SignalId, value: u64) {
        assert_eq!(
            self.circuit.signals[sig.index()].kind(),
            SignalKind::Wire,
            "poke targets must be wires"
        );
        let masked = value & self.circuit.signals[sig.index()].mask();
        self.values[sig.index()] = masked;
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }

    fn circuit(&self) -> &Circuit {
        &self.circuit
    }
}

/// Event-driven engine with VHDL-style delta cycles.
///
/// Each cycle starts by waking the processes sensitive to registers (and
/// pokes) that changed at the previous edge, then iterates: evaluate a
/// woken process, propagate wakeups for every wire it actually changed,
/// until quiescent. The clock edge then fires as usual.
///
/// Produces exactly the same per-cycle values as [`CycleEngine`]; its
/// [`EngineStats::comb_evals`] measures real switching activity, which is
/// what makes skeleton simulation cheap on mostly-idle systems.
#[derive(Debug)]
pub struct EventEngine {
    circuit: Circuit,
    values: Vec<u64>,
    next: Vec<u64>,
    stats: EngineStats,
    trace: Option<Trace>,
    /// Wakeup queue and membership flags for the current delta loop.
    queue: VecDeque<u32>,
    queued: Vec<bool>,
    changed_regs: Vec<SignalId>,
    first_cycle: bool,
    /// Safety valve: an engine bug (or undeclared read/write) could
    /// otherwise livelock the delta loop.
    max_deltas_per_cycle: u64,
}

impl EventEngine {
    /// Create an engine over `circuit`, with all signals at their initial
    /// values.
    #[must_use]
    pub fn new(circuit: Circuit) -> Self {
        let values = circuit.initial_values();
        let nproc = circuit.process_count();
        Self {
            circuit,
            values,
            next: Vec::new(),
            stats: EngineStats::default(),
            trace: None,
            queue: VecDeque::new(),
            queued: vec![false; nproc],
            changed_regs: Vec::new(),
            first_cycle: true,
            max_deltas_per_cycle: 1_000_000,
        }
    }

    /// Enable per-cycle change recording (see [`Trace`]).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Trace::new());
        }
    }

    /// The recorded trace, if tracing was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    fn wake_sensitive(&mut self, sig: SignalId) {
        for &pid in &self.circuit.sensitivity[sig.index()] {
            if !self.queued[pid.index()] {
                self.queued[pid.index()] = true;
                self.queue.push_back(pid.0);
            }
        }
    }

    fn delta_loop(&mut self) {
        let mut deltas = 0u64;
        while let Some(pi) = self.queue.pop_front() {
            self.queued[pi as usize] = false;
            let p = &mut self.circuit.processes[pi as usize];
            let changed = if let Behaviour::Comb(f) = &mut p.behaviour {
                let mut ctx = EvalCtx {
                    infos: &self.circuit.signals,
                    values: &mut self.values,
                    changed: Vec::new(),
                };
                f(&mut ctx);
                self.stats.comb_evals += 1;
                ctx.changed
            } else {
                Vec::new()
            };
            self.stats.events += changed.len() as u64;
            for sig in changed {
                self.wake_sensitive(sig);
            }
            deltas += 1;
            self.stats.deltas += 1;
            assert!(
                deltas <= self.max_deltas_per_cycle,
                "delta-cycle livelock: combinational logic did not settle"
            );
        }
    }
}

impl Engine for EventEngine {
    fn step(&mut self) {
        if self.first_cycle {
            // Every combinational process runs once to establish wire
            // values from the initial register state.
            for i in 0..self.circuit.comb_order.len() {
                let pid = self.circuit.comb_order[i];
                if !self.queued[pid.index()] {
                    self.queued[pid.index()] = true;
                    self.queue.push_back(pid.0);
                }
            }
            self.first_cycle = false;
        }
        self.delta_loop();
        if let Some(t) = &mut self.trace {
            t.record(self.stats.cycles, &self.circuit, &self.values)
                .expect("engine captures are sized and ordered by construction");
        }
        edge_phase(
            &mut self.circuit,
            &mut self.values,
            &mut self.next,
            &mut self.stats,
            &mut self.changed_regs,
        );
        let changed = std::mem::take(&mut self.changed_regs);
        for sig in &changed {
            self.wake_sensitive(*sig);
        }
        self.changed_regs = changed;
        self.stats.cycles += 1;
    }

    fn value(&self, sig: SignalId) -> u64 {
        self.values[sig.index()]
    }

    fn poke(&mut self, sig: SignalId, value: u64) {
        assert_eq!(
            self.circuit.signals[sig.index()].kind(),
            SignalKind::Wire,
            "poke targets must be wires"
        );
        let masked = value & self.circuit.signals[sig.index()].mask();
        if self.values[sig.index()] != masked {
            self.values[sig.index()] = masked;
            self.wake_sensitive(sig);
        }
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }

    fn circuit(&self) -> &Circuit {
        &self.circuit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;

    /// A 3-stage pipeline: in -> r1 -> r2, with a comb inverter tap.
    fn pipeline() -> (crate::Circuit, SignalId, SignalId, SignalId, SignalId) {
        let mut b = CircuitBuilder::new();
        let input = b.wire("in", 8, 0);
        let r1 = b.register("r1", 8, 0);
        let r2 = b.register("r2", 8, 0);
        let inv = b.wire("inv", 8, 0);
        b.seq("s1", &[input], &[r1], move |ctx| {
            let v = ctx.get(input);
            ctx.set_next(r1, v);
        });
        b.seq("s2", &[r1], &[r2], move |ctx| {
            let v = ctx.get(r1);
            ctx.set_next(r2, v);
        });
        b.comb("inv", &[r2], &[inv], move |ctx| {
            let v = ctx.get(r2);
            ctx.set(inv, !v);
        });
        (b.build().unwrap(), input, r1, r2, inv)
    }

    #[test]
    fn cycle_engine_pipelines_data() {
        let (c, input, _r1, r2, inv) = pipeline();
        let mut e = CycleEngine::new(c);
        e.poke(input, 0xAB);
        e.step();
        e.step();
        assert_eq!(e.value(r2), 0xAB);
        e.settle();
        assert_eq!(e.value(inv), !0xABu64 & 0xFF);
    }

    #[test]
    fn engines_agree_cycle_by_cycle() {
        let (c1, in1, ..) = pipeline();
        let (c2, in2, ..) = pipeline();
        let mut a = CycleEngine::new(c1);
        let mut b = EventEngine::new(c2);
        for t in 0..20u64 {
            a.poke(in1, t * 7);
            b.poke(in2, t * 7);
            a.step();
            b.step();
            for i in 0..a.circuit().signal_count() {
                let sig = SignalId(u32::try_from(i).unwrap());
                assert_eq!(a.value(sig), b.value(sig), "cycle {t}, signal {sig}");
            }
        }
    }

    #[test]
    fn event_engine_skips_idle_logic() {
        let (c, input, ..) = pipeline();
        let mut e = EventEngine::new(c);
        e.poke(input, 5);
        e.run(3); // pipeline settles, nothing changes afterwards
        let evals_after_settle = e.stats().comb_evals;
        e.run(10);
        // The inverter is the only comb process; with no input changes it
        // must not be re-evaluated.
        assert_eq!(e.stats().comb_evals, evals_after_settle);
    }

    #[test]
    fn stats_count_cycles() {
        let (c, ..) = pipeline();
        let mut e = CycleEngine::new(c);
        e.run(5);
        assert_eq!(e.stats().cycles, 5);
        assert_eq!(e.stats().seq_evals, 10); // two seq processes
    }

    #[test]
    #[should_panic(expected = "poke targets must be wires")]
    fn poke_register_panics() {
        let mut b = CircuitBuilder::new();
        let r = b.register("r", 1, 0);
        let mut e = CycleEngine::new(b.build().unwrap());
        e.poke(r, 1);
    }

    #[test]
    fn run_helper_steps_n_times() {
        let mut b = CircuitBuilder::new();
        let r = b.register("r", 16, 0);
        b.seq("inc", &[r], &[r], move |ctx| {
            let v = ctx.get(r);
            ctx.set_next(r, v + 1);
        });
        let mut e = EventEngine::new(b.build().unwrap());
        e.run(100);
        assert_eq!(e.value(r), 100);
    }
}
