//! Declarative construction of circuits.

use crate::circuit::Circuit;
use crate::error::BuildCircuitError;
use crate::process::{Behaviour, ProcessDecl, ProcessId};
use crate::signal::{SignalId, SignalInfo, SignalKind};

/// Evaluation context handed to combinational processes.
///
/// Reads return the settling value of the current cycle; writes drive wires
/// (masked to their declared width).
#[derive(Debug)]
pub struct EvalCtx<'a> {
    pub(crate) infos: &'a [SignalInfo],
    pub(crate) values: &'a mut [u64],
    /// Wires whose value changed during this evaluation (event engine).
    pub(crate) changed: Vec<SignalId>,
}

impl EvalCtx<'_> {
    /// Current value of `sig`.
    ///
    /// # Panics
    ///
    /// Panics if `sig` belongs to a different circuit.
    #[must_use]
    pub fn get(&self, sig: SignalId) -> u64 {
        self.values[sig.index()]
    }

    /// Drive wire `sig` with `value` (masked to the declared width).
    ///
    /// # Panics
    ///
    /// Panics if `sig` belongs to a different circuit.
    pub fn set(&mut self, sig: SignalId, value: u64) {
        let masked = value & self.infos[sig.index()].mask();
        if self.values[sig.index()] != masked {
            self.values[sig.index()] = masked;
            self.changed.push(sig);
        }
    }

    /// Convenience: read a 1-bit signal as a boolean.
    #[must_use]
    pub fn get_bool(&self, sig: SignalId) -> bool {
        self.get(sig) != 0
    }

    /// Convenience: drive a 1-bit signal from a boolean.
    pub fn set_bool(&mut self, sig: SignalId, value: bool) {
        self.set(sig, u64::from(value));
    }
}

/// Edge context handed to sequential processes.
///
/// Reads return the pre-edge (current-cycle) value of any signal; writes
/// schedule the post-edge value of registers.
#[derive(Debug)]
pub struct EdgeCtx<'a> {
    pub(crate) infos: &'a [SignalInfo],
    pub(crate) current: &'a [u64],
    pub(crate) next: &'a mut [u64],
}

impl EdgeCtx<'_> {
    /// Pre-edge value of `sig`.
    ///
    /// # Panics
    ///
    /// Panics if `sig` belongs to a different circuit.
    #[must_use]
    pub fn get(&self, sig: SignalId) -> u64 {
        self.current[sig.index()]
    }

    /// Convenience: read a 1-bit signal as a boolean.
    #[must_use]
    pub fn get_bool(&self, sig: SignalId) -> bool {
        self.get(sig) != 0
    }

    /// Schedule the post-edge value of register `sig` (masked to width).
    ///
    /// # Panics
    ///
    /// Panics if `sig` belongs to a different circuit.
    pub fn set_next(&mut self, sig: SignalId, value: u64) {
        self.next[sig.index()] = value & self.infos[sig.index()].mask();
    }

    /// Convenience: schedule a 1-bit register from a boolean.
    pub fn set_next_bool(&mut self, sig: SignalId, value: bool) {
        self.set_next(sig, u64::from(value));
    }
}

/// Builder for [`Circuit`]s: declare signals and processes, then
/// [`build`](CircuitBuilder::build).
///
/// # Example
///
/// ```
/// use lip_kernel::{CircuitBuilder, CycleEngine, Engine};
///
/// # fn main() -> Result<(), lip_kernel::BuildCircuitError> {
/// let mut b = CircuitBuilder::new();
/// let a = b.wire("a", 8, 1);
/// let twice = b.wire("twice", 8, 0);
/// b.comb("double", &[a], &[twice], move |ctx| {
///     let v = ctx.get(a);
///     ctx.set(twice, v * 2);
/// });
/// let mut engine = CycleEngine::new(b.build()?);
/// engine.step();
/// assert_eq!(engine.value(twice), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct CircuitBuilder {
    signals: Vec<SignalInfo>,
    processes: Vec<ProcessDecl>,
}

impl CircuitBuilder {
    /// Create an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn add_signal(
        &mut self,
        name: impl Into<String>,
        width: u8,
        init: u64,
        kind: SignalKind,
    ) -> SignalId {
        let id = SignalId(u32::try_from(self.signals.len()).expect("too many signals"));
        let info = SignalInfo {
            name: name.into(),
            width,
            init,
            kind,
        };
        let init = init & info.mask();
        self.signals.push(SignalInfo { init, ..info });
        id
    }

    /// Declare a combinationally-driven wire.
    ///
    /// A wire with no driving process acts as an external input and can be
    /// set through [`Engine::poke`](crate::Engine::poke).
    pub fn wire(&mut self, name: impl Into<String>, width: u8, init: u64) -> SignalId {
        self.add_signal(name, width, init, SignalKind::Wire)
    }

    /// Declare a clocked register initialised to `init`.
    pub fn register(&mut self, name: impl Into<String>, width: u8, init: u64) -> SignalId {
        self.add_signal(name, width, init, SignalKind::Register)
    }

    /// Declare a combinational process.
    ///
    /// `reads` is the sensitivity list, `writes` the set of wires the
    /// closure may drive. Declaring a read or write the closure does not
    /// perform is harmless; performing one that is not declared leads to
    /// nondeterministic schedules and is rejected where detectable.
    pub fn comb<F>(
        &mut self,
        name: impl Into<String>,
        reads: &[SignalId],
        writes: &[SignalId],
        f: F,
    ) -> ProcessId
    where
        F: FnMut(&mut EvalCtx<'_>) + 'static,
    {
        let id = ProcessId(u32::try_from(self.processes.len()).expect("too many processes"));
        self.processes.push(ProcessDecl {
            name: name.into(),
            reads: reads.to_vec(),
            writes: writes.to_vec(),
            behaviour: Behaviour::Comb(Box::new(f)),
        });
        id
    }

    /// Declare a sequential (clock-edge) process.
    ///
    /// `reads` may mention any signal; `writes` must mention registers
    /// only. All sequential processes observe the same pre-edge snapshot,
    /// so their relative order is immaterial.
    pub fn seq<F>(
        &mut self,
        name: impl Into<String>,
        reads: &[SignalId],
        writes: &[SignalId],
        f: F,
    ) -> ProcessId
    where
        F: FnMut(&mut EdgeCtx<'_>) + 'static,
    {
        let id = ProcessId(u32::try_from(self.processes.len()).expect("too many processes"));
        self.processes.push(ProcessDecl {
            name: name.into(),
            reads: reads.to_vec(),
            writes: writes.to_vec(),
            behaviour: Behaviour::Seq(Box::new(f)),
        });
        id
    }

    /// Number of signals declared so far.
    #[must_use]
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// Number of processes declared so far.
    #[must_use]
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// Elaborate the declarations into a runnable [`Circuit`].
    ///
    /// # Errors
    ///
    /// Returns [`BuildCircuitError`] if a signal width is invalid, a wire
    /// has several combinational drivers, a combinational process drives a
    /// register (or a sequential one drives a wire), or the combinational
    /// dependency graph contains a cycle.
    pub fn build(self) -> Result<Circuit, BuildCircuitError> {
        Circuit::elaborate(self.signals, self.processes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CycleEngine, Engine};

    #[test]
    fn wire_values_are_masked() {
        let mut b = CircuitBuilder::new();
        let a = b.wire("a", 4, 0);
        let y = b.wire("y", 4, 0);
        b.comb("pass", &[a], &[y], move |ctx| {
            let v = ctx.get(a);
            ctx.set(y, v + 0xF0); // upper bits must be masked away
        });
        let mut e = CycleEngine::new(b.build().unwrap());
        e.poke(a, 3);
        e.step();
        assert_eq!(e.value(y), 3);
    }

    #[test]
    fn init_values_are_masked() {
        let mut b = CircuitBuilder::new();
        let r = b.register("r", 2, 0xFF);
        let c = b.build().unwrap();
        assert_eq!(c.signal_info(r).init(), 0b11);
    }

    #[test]
    fn bool_helpers() {
        let mut b = CircuitBuilder::new();
        let a = b.wire("a", 1, 0);
        let y = b.wire("y", 1, 0);
        b.comb("not", &[a], &[y], move |ctx| {
            let v = ctx.get_bool(a);
            ctx.set_bool(y, !v);
        });
        let mut e = CycleEngine::new(b.build().unwrap());
        e.step();
        assert_eq!(e.value(y), 1);
    }

    #[test]
    fn counts_track_declarations() {
        let mut b = CircuitBuilder::new();
        let a = b.wire("a", 1, 0);
        b.register("r", 1, 0);
        b.comb("p", &[a], &[], |_| {});
        assert_eq!(b.signal_count(), 2);
        assert_eq!(b.process_count(), 1);
    }
}
