//! Cycle-accurate and event-driven simulation substrate for synchronous
//! hardware, built to host latency-insensitive designs.
//!
//! The DATE'04 paper this workspace reproduces ("Issues in Implementing
//! Latency Insensitive Protocols", Casu & Macchiarulo) validated its
//! protocol blocks with "a VHDL description of all blocks and an
//! event-driven simulator". Rust has no mature HDL ecosystem, so this crate
//! provides the equivalent substrate from scratch:
//!
//! * [`CircuitBuilder`] — declare signals, registers, combinational and
//!   sequential processes, in the spirit of an RTL netlist.
//! * [`Circuit`] — an elaborated design: processes levelised over the
//!   combinational dependency graph, with combinational loops rejected at
//!   build time (the hardware analogue of the paper's minimum-memory
//!   theorem: every physical cycle must be cut by a register).
//! * Two interchangeable engines:
//!   [`CycleEngine`] evaluates every combinational
//!   process once per clock in topological order; and
//!   [`EventEngine`] runs VHDL-style delta cycles,
//!   re-evaluating only processes sensitised by signal changes. Both
//!   produce identical cycle-level traces; the event engine additionally
//!   reports activity statistics used by the `engine_ablation` experiment.
//! * [`Trace`] — per-cycle change recording with a VCD
//!   export, standing in for the waveform viewer used to draw the paper's
//!   Fig. 1 and Fig. 2 evolutions.
//!
//! # Example
//!
//! Build a two-bit counter and run it for four cycles:
//!
//! ```
//! use lip_kernel::{CircuitBuilder, CycleEngine, Engine};
//!
//! # fn main() -> Result<(), lip_kernel::BuildCircuitError> {
//! let mut b = CircuitBuilder::new();
//! let count = b.register("count", 2, 0);
//! b.seq("incr", &[count], &[count], move |ctx| {
//!     let v = ctx.get(count);
//!     ctx.set_next(count, v + 1);
//! });
//! let circuit = b.build()?;
//! let mut engine = CycleEngine::new(circuit);
//! for _ in 0..4 {
//!     engine.step();
//! }
//! assert_eq!(engine.value(count), 0); // wrapped around modulo 4
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod builder;
mod circuit;
pub mod engine;
mod error;
mod process;
mod signal;
pub mod trace;

pub use builder::{CircuitBuilder, EdgeCtx, EvalCtx};
pub use circuit::Circuit;
pub use engine::{CycleEngine, Engine, EngineStats, EventEngine};
pub use error::{BuildCircuitError, TraceError};
pub use process::ProcessId;
pub use signal::{SignalId, SignalInfo, SignalKind};
pub use trace::{Change, Trace};
