//! Edge-case coverage of the simulation kernel.

use lip_kernel::{CircuitBuilder, CycleEngine, Engine, EventEngine};

/// in -> (xor with register) -> out, with feedback.
fn xor_loop() -> (
    lip_kernel::Circuit,
    lip_kernel::SignalId,
    lip_kernel::SignalId,
) {
    let mut b = CircuitBuilder::new();
    let input = b.wire("in", 8, 0);
    let state = b.register("state", 8, 0);
    let out = b.wire("out", 8, 0);
    b.comb("mix", &[input, state], &[out], move |ctx| {
        let v = ctx.get(input) ^ ctx.get(state);
        ctx.set(out, v);
    });
    b.seq("latch", &[out], &[state], move |ctx| {
        let v = ctx.get(out);
        ctx.set_next(state, v);
    });
    (b.build().unwrap(), input, out)
}

#[test]
fn poke_wakes_the_event_engine() {
    let (c, input, out) = xor_loop();
    let mut e = EventEngine::new(c);
    e.step();
    let evals = e.stats().comb_evals;
    // No poke: the mixer output stabilises; further steps with a stable
    // register cause no re-evaluation.
    e.step();
    let idle = e.stats().comb_evals;
    assert_eq!(idle, evals, "idle cycle must not evaluate");
    // A poke re-sensitises the mixer.
    e.poke(input, 0xFF);
    e.step();
    assert!(e.stats().comb_evals > idle);
    assert_ne!(e.value(out), 0);
}

#[test]
fn settle_is_idempotent() {
    let (c, input, out) = xor_loop();
    let mut e = CycleEngine::new(c);
    e.poke(input, 0x0F);
    e.settle();
    let v1 = e.value(out);
    e.settle();
    let v2 = e.value(out);
    assert_eq!(v1, v2);
    assert_eq!(v1, 0x0F);
}

#[test]
fn stats_deltas_differ_between_engines() {
    let (c1, ..) = xor_loop();
    let (c2, ..) = xor_loop();
    let mut cyc = CycleEngine::new(c1);
    let mut evt = EventEngine::new(c2);
    cyc.run(10);
    evt.run(10);
    // The cycle engine counts one delta per cycle; the event engine one
    // per evaluation wave.
    assert_eq!(cyc.stats().deltas, 10);
    assert!(evt.stats().deltas >= 1);
    assert_eq!(cyc.stats().cycles, evt.stats().cycles);
}

#[test]
fn vcd_handles_multibit_and_singlebit() {
    let mut b = CircuitBuilder::new();
    let bit = b.register("bit", 1, 0);
    let word = b.register("word", 16, 0);
    b.seq("count", &[bit, word], &[bit, word], move |ctx| {
        ctx.set_next(bit, ctx.get(bit) + 1);
        ctx.set_next(word, ctx.get(word) + 3);
    });
    let mut e = CycleEngine::new(b.build().unwrap());
    e.enable_trace();
    e.run(4);
    let vcd = e.trace().unwrap().to_vcd(e.circuit());
    // Single-bit changes use the compact form, multi-bit the `b...` form.
    assert!(vcd.lines().any(|l| l == "1!" || l == "0!"), "{vcd}");
    assert!(vcd.lines().any(|l| l.starts_with("b11 ")), "{vcd}");
}

#[test]
fn trace_iteration_yields_monotone_cycles() {
    let (c, ..) = xor_loop();
    let mut e = CycleEngine::new(c);
    e.enable_trace();
    e.run(5);
    let cycles: Vec<u64> = e.trace().unwrap().iter().map(|(c, _)| c).collect();
    assert_eq!(cycles, vec![0, 1, 2, 3, 4]);
    // First record carries full initial values.
    let (_, first) = e.trace().unwrap().iter().next().unwrap();
    assert_eq!(first.len(), e.circuit().signal_count());
}

#[test]
fn signals_iterator_matches_info() {
    let (c, ..) = xor_loop();
    for (id, info) in c.signals() {
        assert_eq!(c.signal_info(id).name(), info.name());
        assert!(info.width() >= 1);
    }
}
