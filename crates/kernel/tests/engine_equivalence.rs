//! Property tests: the levelised cycle engine and the event-driven
//! engine are observationally identical on arbitrary random circuits.

use lip_kernel::{CircuitBuilder, CycleEngine, Engine, EventEngine, SignalId};
use proptest::prelude::*;

/// A recipe for one random synchronous circuit: `n_regs` registers and
/// a list of combinational gates, each reading two earlier signals.
#[derive(Debug, Clone)]
struct CircuitSpec {
    n_regs: usize,
    /// Per gate: (src_a, src_b, op) over the signal pool built so far.
    gates: Vec<(usize, usize, u8)>,
    /// Per register: (src, op) feedback function.
    feedback: Vec<(usize, u8)>,
    init: Vec<u64>,
}

fn spec_strategy() -> impl Strategy<Value = CircuitSpec> {
    (1usize..5, 0usize..8).prop_flat_map(|(n_regs, n_gates)| {
        let gates = proptest::collection::vec((0usize..64, 0usize..64, 0u8..4), n_gates..=n_gates);
        let feedback = proptest::collection::vec((0usize..64, 0u8..4), n_regs..=n_regs);
        let init = proptest::collection::vec(0u64..16, n_regs..=n_regs);
        (Just(n_regs), gates, feedback, init).prop_map(|(n_regs, gates, feedback, init)| {
            CircuitSpec {
                n_regs,
                gates,
                feedback,
                init,
            }
        })
    })
}

fn apply(op: u8, a: u64, b: u64) -> u64 {
    match op {
        0 => a.wrapping_add(b),
        1 => a ^ b,
        2 => a & b,
        _ => a.wrapping_mul(3).wrapping_add(b),
    }
}

/// Build the circuit described by `spec`. Gates only read signals
/// created before them, so the combinational graph is a DAG by
/// construction.
fn build(spec: &CircuitSpec) -> (lip_kernel::Circuit, Vec<SignalId>) {
    let mut b = CircuitBuilder::new();
    let mut pool: Vec<SignalId> = Vec::new();
    for (i, &init) in spec.init.iter().enumerate() {
        pool.push(b.register(format!("r{i}"), 16, init));
    }
    for (gi, &(sa, sb, op)) in spec.gates.iter().enumerate() {
        let a = pool[sa % pool.len()];
        let bb = pool[sb % pool.len()];
        let w = b.wire(format!("w{gi}"), 16, 0);
        b.comb(format!("g{gi}"), &[a, bb], &[w], move |ctx| {
            let va = ctx.get(a);
            let vb = ctx.get(bb);
            ctx.set(w, apply(op, va, vb));
        });
        pool.push(w);
    }
    for (ri, &(src, op)) in spec.feedback.iter().enumerate() {
        let reg = pool[ri];
        let s = pool[src % pool.len()];
        b.seq(format!("f{ri}"), &[reg, s], &[reg], move |ctx| {
            let v = ctx.get(reg);
            let x = ctx.get(s);
            ctx.set_next(reg, apply(op, v, x));
        });
    }
    let all = pool.clone();
    (b.build().expect("gates form a DAG by construction"), all)
}

proptest! {
    /// Both engines compute identical signal values on every cycle of
    /// every random circuit.
    #[test]
    fn engines_agree_on_random_circuits(spec in spec_strategy(), cycles in 1u64..40) {
        let (c1, sigs) = build(&spec);
        let (c2, _) = build(&spec);
        let mut cyc = CycleEngine::new(c1);
        let mut evt = EventEngine::new(c2);
        for t in 0..cycles {
            cyc.step();
            evt.step();
            for &s in &sigs {
                prop_assert_eq!(cyc.value(s), evt.value(s), "cycle {} signal {}", t, s);
            }
        }
    }

    /// The event engine never evaluates a process more often than the
    /// cycle engine times a delta factor, and converges every cycle.
    #[test]
    fn event_engine_terminates_and_is_bounded(spec in spec_strategy(), cycles in 1u64..30) {
        let (c, _) = build(&spec);
        assert!(spec.n_regs >= 1);
        let n_comb = spec.gates.len() as u64;
        let mut evt = EventEngine::new(c);
        evt.run(cycles);
        // Each comb process can be woken at most once per writer change
        // per cycle; with DAG logic each settles in one evaluation, plus
        // the initial full pass.
        let bound = n_comb * (cycles + 1) * 2 + n_comb;
        prop_assert!(evt.stats().comb_evals <= bound.max(1),
            "comb_evals {} exceeds bound {}", evt.stats().comb_evals, bound);
    }

    /// Traces recorded by both engines agree change-for-change.
    #[test]
    fn traces_agree(spec in spec_strategy(), cycles in 1u64..20) {
        let (c1, sigs) = build(&spec);
        let (c2, _) = build(&spec);
        let mut cyc = CycleEngine::new(c1);
        let mut evt = EventEngine::new(c2);
        cyc.enable_trace();
        evt.enable_trace();
        cyc.run(cycles);
        evt.run(cycles);
        let ta = cyc.trace().expect("enabled");
        let tb = evt.trace().expect("enabled");
        for t in 0..cycles {
            for &s in &sigs {
                prop_assert_eq!(ta.value_at(s, t), tb.value_at(s, t));
            }
        }
    }
}
