//! Edge cases of per-cycle change recording: empty traces, rejected
//! captures, and circuits wider than one base-94 VCD identifier digit.

use lip_kernel::{Circuit, CircuitBuilder, CycleEngine, Engine, SignalId, Trace, TraceError};

/// A wires-only circuit with `n` one-bit signals.
fn wires(n: usize) -> (Circuit, Vec<SignalId>) {
    let mut b = CircuitBuilder::new();
    let sigs: Vec<SignalId> = (0..n).map(|i| b.wire(format!("w{i}"), 1, 0)).collect();
    (b.build().expect("wires-only circuit"), sigs)
}

#[test]
fn empty_trace_serialises_to_valid_vcd() {
    let (circuit, _) = wires(3);
    let trace = Trace::new();
    assert!(trace.is_empty());
    assert_eq!(trace.len(), 0);
    let vcd = trace.to_vcd(&circuit);
    // Header and definitions are present even with no recorded cycles.
    assert!(vcd.contains("$enddefinitions $end"));
    assert!(vcd.contains("$var wire 1 ! w0 $end"));
    // No timestamp records follow the definitions.
    assert!(!vcd.lines().any(|l| l.starts_with('#')));
}

#[test]
fn empty_trace_has_no_values() {
    let (_, sigs) = wires(1);
    let trace = Trace::new();
    assert_eq!(trace.value_at(sigs[0], 0), None);
    assert_eq!(trace.iter().count(), 0);
}

#[test]
fn non_monotonic_capture_is_rejected() {
    let (circuit, _) = wires(2);
    let mut trace = Trace::new();
    trace.record(5, &circuit, &[0, 1]).unwrap();
    // Same cycle again.
    assert_eq!(
        trace.record(5, &circuit, &[1, 1]),
        Err(TraceError::NonMonotonicCycle { last: 5, got: 5 })
    );
    // Earlier cycle.
    assert_eq!(
        trace.record(3, &circuit, &[1, 1]),
        Err(TraceError::NonMonotonicCycle { last: 5, got: 3 })
    );
    // The rejected captures must not have been recorded.
    assert_eq!(trace.len(), 1);
    // Recording resumes at a later cycle.
    trace.record(6, &circuit, &[1, 1]).unwrap();
    assert_eq!(trace.len(), 2);
}

#[test]
fn late_registered_signal_is_rejected_not_misindexed() {
    // Record against a 2-signal circuit first …
    let (small, _) = wires(2);
    let mut trace = Trace::new();
    trace.record(0, &small, &[0, 0]).unwrap();
    // … then pretend a signal was registered afterwards: captures from
    // the grown circuit must be rejected, not silently mis-indexed.
    let (grown, _) = wires(3);
    assert_eq!(
        trace.record(1, &grown, &[0, 0, 1]),
        Err(TraceError::ShadowSizeMismatch {
            expected: 2,
            got: 3
        })
    );
    assert_eq!(trace.len(), 1);
}

#[test]
fn values_from_wrong_circuit_are_rejected() {
    let (circuit, _) = wires(4);
    let mut trace = Trace::new();
    // Too-short and too-long value slices both fail, even on the very
    // first capture.
    assert_eq!(
        trace.record(0, &circuit, &[0, 0]),
        Err(TraceError::ShadowSizeMismatch {
            expected: 4,
            got: 2
        })
    );
    assert!(trace.is_empty());
}

#[test]
fn trace_error_display_is_informative() {
    let e = TraceError::ShadowSizeMismatch {
        expected: 2,
        got: 3,
    };
    assert!(e.to_string().contains("registered before recording"));
    let e = TraceError::NonMonotonicCycle { last: 7, got: 7 };
    assert!(e.to_string().contains("cycle 7"));
}

#[test]
fn circuit_with_more_than_64_signals_traces_every_signal() {
    // 100 signals crosses both the u64-bitmask boundary (64) and the
    // single-digit base-94 VCD identifier boundary (94).
    const N: usize = 100;
    let (circuit, sigs) = wires(N);
    let mut trace = Trace::new();
    let mut values = vec![0u64; N];
    trace.record(0, &circuit, &values).unwrap();
    // Flip one signal per cycle.
    for (cycle, i) in (1..).zip(0..N) {
        values[i] = 1;
        trace.record(cycle as u64, &circuit, &values).unwrap();
    }
    // Every signal's flip landed at its own cycle.
    for (i, &sig) in sigs.iter().enumerate() {
        let flip_cycle = i as u64 + 1;
        assert_eq!(trace.value_at(sig, flip_cycle - 1), Some(0), "w{i} before");
        assert_eq!(trace.value_at(sig, flip_cycle), Some(1), "w{i} after");
    }
    // The VCD names all 100 signals with unique identifiers.
    let vcd = trace.to_vcd(&circuit);
    for i in 0..N {
        assert!(vcd.contains(&format!(" w{i} $end")), "w{i} declared");
    }
    let idents: Vec<&str> = vcd
        .lines()
        .filter(|l| l.starts_with("$var"))
        .map(|l| l.split_whitespace().nth(3).expect("ident column"))
        .collect();
    assert_eq!(idents.len(), N);
    let unique: std::collections::HashSet<&&str> = idents.iter().collect();
    assert_eq!(unique.len(), N, "VCD identifiers must be unique");
}

#[test]
fn engine_tracing_still_works_after_api_change() {
    let mut b = CircuitBuilder::new();
    let r = b.register("count", 8, 0);
    b.seq("inc", &[r], &[r], move |ctx| {
        let v = ctx.get(r);
        ctx.set_next(r, v + 1);
    });
    let mut e = CycleEngine::new(b.build().unwrap());
    e.enable_trace();
    e.run(10);
    let t = e.trace().unwrap();
    assert_eq!(t.len(), 10);
    assert_eq!(t.value_at(r, 9), Some(9));
}
