//! Hash-consed state arena for the explicit-state search.
//!
//! Every distinct control state the checker reaches is interned exactly
//! once into a flat `Vec<u64>` (all states are the same length for a
//! given program), and from then on is referred to by its dense `u32`
//! id. Ids are handed out in insertion order, which both search modes
//! exploit: the declared-mode lasso detector reads the stem length
//! straight off the revisited id, and the adversarial BFS relies on ids
//! being discovery-ordered (hence depth-nondecreasing) to pick the
//! *minimal* counterexample.
//!
//! Lookup is a [`stable_hash`]-keyed bucket map with full-word
//! comparison on collision, so the arena is exact — hash collisions
//! cannot conflate states.

use std::collections::HashMap;

use lip_sim::program::stable_hash;

/// Interning arena over fixed-length `u64` state vectors.
#[derive(Debug, Clone)]
pub struct StateArena {
    /// State width in words; every interned slice must match.
    state_len: usize,
    /// All interned states, concatenated (`id * state_len ..`).
    words: Vec<u64>,
    /// `stable_hash` → candidate ids, compared word-for-word.
    buckets: HashMap<u64, Vec<u32>>,
}

impl StateArena {
    /// An empty arena for states of `state_len` words.
    #[must_use]
    pub fn new(state_len: usize) -> Self {
        StateArena {
            state_len,
            words: Vec::new(),
            buckets: HashMap::new(),
        }
    }

    /// Intern `state`, returning `(id, fresh)`: the dense id and
    /// whether this call inserted it (`false` = it was already known).
    ///
    /// # Panics
    ///
    /// Panics if `state` has the wrong width or the arena is full
    /// (`u32::MAX` states).
    pub fn intern(&mut self, state: &[u64]) -> (u32, bool) {
        assert_eq!(state.len(), self.state_len, "state width");
        let hash = stable_hash(state);
        let next_id = u32::try_from(self.len()).expect("state arena overflow");
        let bucket = self.buckets.entry(hash).or_default();
        for &id in bucket.iter() {
            if self.words[id as usize * self.state_len..][..self.state_len] == *state {
                return (id, false);
            }
        }
        self.words.extend_from_slice(state);
        bucket.push(next_id);
        (next_id, true)
    }

    /// The interned state for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never handed out.
    #[must_use]
    pub fn get(&self, id: u32) -> &[u64] {
        &self.words[id as usize * self.state_len..][..self.state_len]
    }

    /// Number of distinct states interned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len().checked_div(self.state_len).unwrap_or(0)
    }

    /// `true` when nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Heap footprint of the arena in bytes (state words plus bucket
    /// map), the number the bench reports as *peak arena size*.
    #[must_use]
    pub fn bytes(&self) -> usize {
        let bucket_words: usize = self.buckets.values().map(Vec::len).sum();
        self.words.len() * 8 + self.buckets.len() * 16 + bucket_words * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_ordered() {
        let mut a = StateArena::new(3);
        assert!(a.is_empty());
        let (id0, fresh0) = a.intern(&[1, 2, 3]);
        let (id1, fresh1) = a.intern(&[4, 5, 6]);
        let (id2, fresh2) = a.intern(&[1, 2, 3]);
        assert_eq!((id0, fresh0), (0, true));
        assert_eq!((id1, fresh1), (1, true));
        assert_eq!((id2, fresh2), (0, false));
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(1), &[4, 5, 6]);
        assert!(a.bytes() >= 2 * 3 * 8);
    }

    #[test]
    fn near_miss_states_stay_distinct() {
        let mut a = StateArena::new(2);
        for x in 0..64u64 {
            let (id, fresh) = a.intern(&[x, x ^ 1]);
            assert_eq!(id as u64, x);
            assert!(fresh);
        }
        for x in 0..64u64 {
            let (id, fresh) = a.intern(&[x, x ^ 1]);
            assert_eq!(id as u64, x);
            assert!(!fresh);
        }
        assert_eq!(a.len(), 64);
    }

    #[test]
    #[should_panic(expected = "state width")]
    fn wrong_width_is_rejected() {
        let mut a = StateArena::new(2);
        a.intern(&[1, 2, 3]);
    }
}
