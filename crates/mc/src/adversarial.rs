//! Adversarial-environment model checking: exact deadlock freedom
//! against *every* environment.
//!
//! The declared checker trusts the endpoint patterns; this one
//! universally quantifies over them. Breadth-first search over every
//! per-cycle environment choice (each source offers or withholds, each
//! sink stops or accepts) enumerates the reachable component-state
//! space, interned in a [`StateArena`] with parent pointers.
//!
//! The deadlock predicate is *exact*, not a simulation horizon: record
//! which transitions fire a shell, then propagate "can eventually fire"
//! backwards over the reachable graph. A state outside that backward
//! closure can never fire another shell no matter what the environment
//! does — the paper's deadlock. Because BFS ids are discovery-ordered,
//! the lowest-id wedged state yields a *minimal* counterexample
//! schedule via the parent pointers, replayable on the real simulator
//! ([`confirm_stuck`](crate::schedule::confirm_stuck)).
//!
//! The verdict is only claimed when the whole space fit in the budget
//! (`complete`); a truncated search answers [`Verdict::Unknown`].

use std::collections::VecDeque;

use lip_graph::Netlist;
use lip_sim::SkeletonSystem;

use crate::arena::StateArena;
use crate::schedule::{Counterexample, EnvChoice, Schedule};
use crate::{McConfig, McError, Verdict};

/// Exhaustive (or budget-truncated) adversarial search result.
#[derive(Debug, Clone)]
pub struct AdversarialProof {
    /// Distinct component states reached.
    pub states: usize,
    /// Environment transitions expanded.
    pub transitions: u64,
    /// `true` when the whole reachable space was enumerated.
    pub complete: bool,
    /// The deadlock verdict ([`Verdict::Unknown`] when truncated).
    pub verdict: Verdict,
    /// Minimal schedule into a wedged state, when one is reachable.
    pub counterexample: Option<Counterexample>,
    /// Peak [`StateArena`] footprint in bytes.
    pub peak_arena_bytes: usize,
}

impl AdversarialProof {
    /// `true` when the search proved no environment can wedge the
    /// system.
    #[must_use]
    pub fn deadlock_free(&self) -> bool {
        self.verdict == Verdict::DeadlockFree
    }
}

/// Model-check `netlist` against every environment behaviour.
///
/// # Errors
///
/// Propagates [`McError::Netlist`] from elaboration. A state space
/// larger than `cfg.max_states` is *not* an error: the search returns
/// with `complete = false` and [`Verdict::Unknown`].
///
/// # Panics
///
/// Panics if the design has more than 31 combined sources and sinks
/// (the per-cycle choice fan-out `2^(sources+sinks)` is enumerated
/// exhaustively).
pub fn check_adversarial(netlist: &Netlist, cfg: &McConfig) -> Result<AdversarialProof, McError> {
    let initial = SkeletonSystem::new(netlist)?;
    let n_src = netlist.sources().len();
    let n_snk = netlist.sinks().len();
    assert!(n_src + n_snk < 32, "environment choice fan-out too large");
    let has_shells = !netlist.shells().is_empty();

    let mut arena = StateArena::new(initial.component_state().len());
    let (root, _) = arena.intern(&initial.component_state());
    debug_assert_eq!(root, 0);
    // Parent pointer per state id (id 0 = root, parent unused).
    let mut parents: Vec<(u32, EnvChoice)> = vec![(
        0,
        EnvChoice {
            source_valid: Vec::new(),
            sink_stop: Vec::new(),
        },
    )];
    // Forward edges per state (deduplicated per expansion), and whether
    // the state has an immediately-firing transition.
    let mut edges: Vec<Vec<u32>> = vec![Vec::new()];
    let mut fires_now: Vec<bool> = vec![false];

    let mut queue: VecDeque<(u32, SkeletonSystem)> = VecDeque::new();
    queue.push_back((0, initial));
    let mut transitions = 0u64;
    let mut complete = true;

    while let Some((id, state)) = queue.pop_front() {
        if arena.len() >= cfg.max_states {
            complete = false;
            continue; // drain without expanding further
        }
        for src_mask in 0..(1u32 << n_src) {
            let valids: Vec<bool> = (0..n_src).map(|i| src_mask & (1 << i) != 0).collect();
            for snk_mask in 0..(1u32 << n_snk) {
                let stops: Vec<bool> = (0..n_snk).map(|j| snk_mask & (1 << j) != 0).collect();
                let mut next = state.clone();
                let before = next.total_fires();
                next.step_with(&valids, &stops);
                transitions += 1;
                if next.total_fires() > before {
                    fires_now[id as usize] = true;
                }
                let (nid, fresh) = arena.intern(&next.component_state());
                if !edges[id as usize].contains(&nid) {
                    edges[id as usize].push(nid);
                }
                if fresh {
                    parents.push((
                        id,
                        EnvChoice {
                            source_valid: valids.clone(),
                            sink_stop: stops.clone(),
                        },
                    ));
                    edges.push(Vec::new());
                    fires_now.push(false);
                    queue.push_back((nid, next));
                }
            }
        }
    }

    let verdict = if !has_shells {
        // Nothing can deadlock: there is nothing to fire.
        Verdict::DeadlockFree
    } else if !complete {
        Verdict::Unknown
    } else {
        match first_wedged(&edges, &fires_now) {
            None => Verdict::DeadlockFree,
            Some(_) => Verdict::Deadlock,
        }
    };
    let counterexample = if verdict == Verdict::Deadlock {
        let wedged = first_wedged(&edges, &fires_now).expect("verdict");
        let mut choices = Vec::new();
        let mut at = wedged;
        while at != 0 {
            let (parent, choice) = &parents[at as usize];
            choices.push(choice.clone());
            at = *parent;
        }
        choices.reverse();
        Some(Counterexample {
            schedule: Schedule { choices },
            stuck_state: arena.get(wedged).to_vec(),
            continuation: None,
        })
    } else {
        None
    };

    Ok(AdversarialProof {
        states: arena.len(),
        transitions,
        complete,
        verdict,
        counterexample,
        peak_arena_bytes: arena.bytes(),
    })
}

/// Lowest-id state from which no shell can ever fire again: the
/// complement of the backward closure of the firing states over the
/// (complete) reachable graph. `None` when every state can still fire.
fn first_wedged(edges: &[Vec<u32>], fires_now: &[bool]) -> Option<u32> {
    let n = edges.len();
    let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (u, outs) in edges.iter().enumerate() {
        for &v in outs {
            rev[v as usize].push(u as u32);
        }
    }
    // Seed: states that can fire on some immediate choice; propagate
    // "can eventually fire" backwards.
    let mut good = fires_now.to_vec();
    let mut queue: VecDeque<u32> = (0..n as u32).filter(|&i| good[i as usize]).collect();
    while let Some(v) = queue.pop_front() {
        for &u in &rev[v as usize] {
            if !good[u as usize] {
                good[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    (0..n as u32).find(|&i| !good[i as usize])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wedged_detection_over_a_toy_graph() {
        // 0 -> 1 (fires), 0 -> 2, 2 -> 2 (never fires).
        let edges = vec![vec![1, 2], vec![1], vec![2]];
        let fires = vec![false, true, false];
        assert_eq!(first_wedged(&edges, &fires), Some(2));
        // Make the trap escape back to the firing state: all good.
        let edges = vec![vec![1, 2], vec![1], vec![1]];
        assert_eq!(first_wedged(&edges, &fires), None);
    }
}
