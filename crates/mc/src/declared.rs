//! Declared-environment model checking: the exact lasso proof.
//!
//! Under the environment the netlist *declares* (periodic source void
//! patterns and sink stop patterns), the skeleton is a deterministic
//! finite-state machine: control state × environment phase. Stepping it
//! while interning every visited state into a [`StateArena`] must
//! eventually revisit one — and because ids are handed out in visit
//! order, the first revisited id *is* the stem length and the visit
//! count minus that id *is* the period. The reachable state space is
//! exactly the visited set, so everything the checker reports is a
//! proof, not a sample:
//!
//! * **liveness / deadlock** — a shell that never fires inside the
//!   lasso window never fires again, ever; if *no* shell fires there the
//!   system is deadlocked (the paper's pathological case);
//! * **throughput** — the sink consumption delta across one period over
//!   the period length is the exact sustained rate, as a [`Ratio`];
//! * **occupancy bounds** — the maximum relay fill seen across the
//!   visited set is the maximum *reachable* fill, a certificate that
//!   any larger capacity is unreachable headroom.
//!
//! The whole trajectory is recorded as a replayable [`Schedule`], so a
//! deadlock verdict ships with a cycle-by-cycle counterexample.

use lip_core::Pattern;
use lip_graph::{Netlist, NodeId, NodeKind};
use lip_sim::{measure::Ratio, SkeletonSystem};

use crate::arena::StateArena;
use crate::schedule::{Counterexample, EnvChoice, Schedule};
use crate::{McConfig, McError};

/// Exhaustive proof over the declared environment: lasso shape,
/// per-shell liveness, exact throughput and relay occupancy bounds.
#[derive(Debug, Clone)]
pub struct DeclaredProof {
    /// Distinct reachable states (= stem + period, every state visited
    /// exactly once).
    pub states: usize,
    /// Cycles before the lasso is entered.
    pub stem: u64,
    /// Lasso length in cycles.
    pub period: u64,
    /// Shells proved to never fire once the lasso is entered.
    pub dead_shells: Vec<NodeId>,
    /// Total shells in the design.
    pub shell_count: usize,
    /// Exact sustained throughput per sink: informative tokens per
    /// cycle across one lasso period.
    pub throughput: Vec<(NodeId, Ratio)>,
    /// Per relay: `(node, max reachable occupancy, capacity)`.
    pub relay_bounds: Vec<(NodeId, u32, u32)>,
    /// The recorded environment schedule covering stem + one period.
    pub schedule: Schedule,
    /// Peak [`StateArena`] footprint in bytes.
    pub peak_arena_bytes: usize,
}

impl DeclaredProof {
    /// `true` when every shell is dead: a proved whole-system deadlock.
    #[must_use]
    pub fn deadlock(&self) -> bool {
        self.shell_count > 0 && self.dead_shells.len() == self.shell_count
    }

    /// `true` when no shell is dead (the liveness verdict).
    #[must_use]
    pub fn is_live(&self) -> bool {
        self.dead_shells.is_empty()
    }

    /// System throughput: the minimum sink rate; `None` without sinks.
    #[must_use]
    pub fn system_throughput(&self) -> Option<Ratio> {
        self.throughput
            .iter()
            .map(|&(_, r)| r)
            .min_by(|a, b| (a.num() * b.den()).cmp(&(b.num() * a.den())))
    }

    /// The deadlock counterexample: the stem schedule into the wedged
    /// state. `None` unless [`deadlock`](Self::deadlock) holds.
    #[must_use]
    pub fn counterexample(&self, netlist: &Netlist) -> Option<Counterexample> {
        if !self.deadlock() {
            return None;
        }
        // Nothing fires after the stem; the stem prefix of the recorded
        // schedule drives a fresh system into the wedged state, and the
        // lasso-period choices cycled forever keep it there (the wedge
        // is relative to the declared environment — a different one
        // could revive the system).
        let schedule = Schedule {
            choices: self.schedule.choices[..self.stem as usize].to_vec(),
        };
        let continuation = Schedule {
            choices: self.schedule.choices[self.stem as usize..].to_vec(),
        };
        let sys = crate::schedule::replay(netlist, &schedule).ok()?;
        Some(Counterexample {
            stuck_state: sys.component_state(),
            schedule,
            continuation: Some(continuation),
        })
    }
}

/// Model-check `netlist` under its declared environment.
///
/// # Errors
///
/// [`McError::Aperiodic`] when any endpoint pattern is aperiodic (the
/// state space is then not finite in this mode — use the adversarial
/// checker), [`McError::StateCap`] when the reachable space exceeds
/// `cfg.max_states`, and [`McError::Netlist`] from elaboration.
pub fn check_declared(netlist: &Netlist, cfg: &McConfig) -> Result<DeclaredProof, McError> {
    let mut sys = SkeletonSystem::new(netlist)?;
    if sys.program().env_period().is_none() {
        return Err(McError::Aperiodic);
    }
    let sources = netlist.sources();
    let sinks = netlist.sinks();
    let shells = netlist.shells();
    let relays = netlist.relays();
    let stop_pats: Vec<Pattern> = sinks
        .iter()
        .map(|&id| match netlist.node(id).kind() {
            NodeKind::Sink { stop_pattern } => stop_pattern.clone(),
            _ => unreachable!("sink row"),
        })
        .collect();

    let mut arena: Option<StateArena> = None;
    // Cumulative counters at each visited state, indexed by visit id.
    let mut sink_hist: Vec<Vec<u64>> = Vec::new();
    let mut fire_hist: Vec<Vec<u64>> = Vec::new();
    let mut relay_max: Vec<u32> = vec![0; relays.len()];
    let mut choices: Vec<EnvChoice> = Vec::new();

    let mut t: u64 = 0;
    let (stem, period) = loop {
        sys.settle();
        let state = sys.control_state().expect("periodic environment");
        let arena = arena.get_or_insert_with(|| StateArena::new(state.len()));
        let (id, fresh) = arena.intern(&state);
        if !fresh {
            break (u64::from(id), t - u64::from(id));
        }
        if arena.len() > cfg.max_states {
            return Err(McError::StateCap {
                visited: arena.len(),
                cap: cfg.max_states,
            });
        }
        sink_hist.push(
            sinks
                .iter()
                .map(|&s| sys.sink_counts(s).unwrap().0)
                .collect(),
        );
        fire_hist.push(
            shells
                .iter()
                .map(|&s| sys.shell_fires(s).unwrap())
                .collect(),
        );
        for (k, &r) in relays.iter().enumerate() {
            relay_max[k] = relay_max[k].max(sys.relay_level(r).unwrap().0);
        }
        let sink_stop: Vec<bool> = stop_pats.iter().map(|p| p.at(t)).collect();
        sys.step();
        // Post-step offers are the offers for cycle t+1 — recording the
        // held value makes `step_with` replay exact (see `schedule`).
        choices.push(EnvChoice {
            source_valid: sys.source_offers().to_vec(),
            sink_stop,
        });
        t += 1;
    };
    let arena = arena.expect("at least one state visited");

    // Counters now (at the revisit of state `stem`) minus counters when
    // `stem` was first visited = exact deltas across one period.
    let sink_now: Vec<u64> = sinks
        .iter()
        .map(|&s| sys.sink_counts(s).unwrap().0)
        .collect();
    let fire_now: Vec<u64> = shells
        .iter()
        .map(|&s| sys.shell_fires(s).unwrap())
        .collect();
    let base = stem as usize;
    let throughput = sinks
        .iter()
        .enumerate()
        .map(|(j, &id)| (id, Ratio::new(sink_now[j] - sink_hist[base][j], period)))
        .collect();
    let dead_shells = shells
        .iter()
        .enumerate()
        .filter(|&(s, _)| fire_now[s] == fire_hist[base][s])
        .map(|(_, &id)| id)
        .collect();
    let relay_bounds = relays
        .iter()
        .zip(&relay_max)
        .map(|(&id, &occ)| {
            let cap = sys.relay_level(id).unwrap().1;
            (id, occ, cap)
        })
        .collect();

    // The first `stem + period` sources offers were recorded; fix the
    // arity of the empty-source corner case for replays.
    debug_assert_eq!(choices.len() as u64, stem + period);
    debug_assert!(choices
        .iter()
        .all(|c| c.source_valid.len() == sources.len()));

    Ok(DeclaredProof {
        states: arena.len(),
        stem,
        period,
        dead_shells,
        shell_count: shells.len(),
        throughput,
        relay_bounds,
        schedule: Schedule { choices },
        peak_arena_bytes: arena.bytes(),
    })
}
