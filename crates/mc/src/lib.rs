//! `lip-mc` — exact model checking of latency-insensitive protocol
//! systems.
//!
//! The simulator *samples* behaviours; this crate *enumerates* them.
//! Working over the same compiled [`SettleProgram`](lip_sim::SettleProgram)
//! semantics as every engine in the workspace, it interns each reachable
//! control state (relay occupancies, shell outputs, source/sink phase)
//! into a hash-consed [`StateArena`] and proves properties of the whole
//! reachable space:
//!
//! * [`check_declared`] — under the netlist's *declared* periodic
//!   environment the system is a deterministic FSM; the search finds its
//!   lasso (stem + period) and derives **exact sustained throughput**,
//!   **per-shell liveness** and **relay occupancy bounds** statically,
//!   with no simulation budget to tune;
//! * [`check_adversarial`] — breadth-first search over *every*
//!   environment choice per cycle proves **deadlock freedom against any
//!   environment**, or returns a minimal replayable [`Counterexample`];
//! * [`confirm_stuck`] / [`replay`] — every deadlock verdict is
//!   validated by replaying its schedule on the real
//!   [`SkeletonSystem`](lip_sim::SkeletonSystem) and watching it wedge;
//! * [`schedule_tracks`] — counterexamples render to Chrome-trace JSON
//!   via [`lip_obs::schedule_chrome_trace`].
//!
//! The `lip_mc` binary surfaces all of this on `.lid` netlist files;
//! the `lip-lint` rules LIP006/LIP007/LIP008 surface it as diagnostics.
//!
//! # Example
//!
//! Prove the Fig. 1 system live and derive its throughput statically:
//!
//! ```
//! use lip_graph::generate;
//! use lip_mc::{check_declared, McConfig};
//! use lip_sim::measure::Ratio;
//!
//! let fig1 = generate::fig1();
//! let proof = check_declared(&fig1.netlist, &McConfig::default()).unwrap();
//! assert!(proof.is_live());
//! assert_eq!(proof.system_throughput(), Some(Ratio::new(4, 5)));
//! ```

#![warn(missing_docs)]

pub mod adversarial;
pub mod arena;
pub mod declared;
pub mod schedule;

use std::fmt;

use lip_graph::NetlistError;

pub use adversarial::{check_adversarial, AdversarialProof};
pub use arena::StateArena;
pub use declared::{check_declared, DeclaredProof};
pub use schedule::{confirm_stuck, replay, schedule_tracks, Counterexample, EnvChoice, Schedule};

/// Search budget and options shared by both checkers.
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Maximum distinct states to intern before giving up: the
    /// declared checker errors past it ([`McError::StateCap`]), the
    /// adversarial checker degrades to [`Verdict::Unknown`].
    pub max_states: usize,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            max_states: 1 << 16,
        }
    }
}

/// Outcome of a deadlock-freedom proof attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// No reachable state is wedged — proved over the whole space.
    DeadlockFree,
    /// A wedged state is reachable; a counterexample exists.
    Deadlock,
    /// The search was truncated by the state budget; no claim.
    Unknown,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::DeadlockFree => "deadlock-free",
            Verdict::Deadlock => "deadlock",
            Verdict::Unknown => "unknown",
        })
    }
}

/// Model-checking failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum McError {
    /// The netlist did not elaborate.
    Netlist(NetlistError),
    /// An endpoint pattern is aperiodic, so the declared-mode state
    /// space is not finite. The adversarial checker still applies.
    Aperiodic,
    /// The reachable space exceeded [`McConfig::max_states`].
    StateCap {
        /// States interned when the cap was hit.
        visited: usize,
        /// The configured cap.
        cap: usize,
    },
}

impl fmt::Display for McError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McError::Netlist(e) => write!(f, "netlist: {e}"),
            McError::Aperiodic => {
                f.write_str("aperiodic endpoint pattern: declared-mode state space is not finite")
            }
            McError::StateCap { visited, cap } => {
                write!(f, "state space exceeds cap ({visited} states, cap {cap})")
            }
        }
    }
}

impl std::error::Error for McError {}

impl From<NetlistError> for McError {
    fn from(e: NetlistError) -> Self {
        McError::Netlist(e)
    }
}
