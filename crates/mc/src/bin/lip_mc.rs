//! `lip_mc` — prove protocol properties of textual netlists by
//! exhaustive model checking.
//!
//! ```text
//! lip_mc [--json] [--prove deadlock|throughput|bounds]...
//!        [--env declared|adversarial] [--max-states N]
//!        [--trace out.json] [--deny all] <file.lid>...
//! ```
//!
//! * `--prove` — which properties to prove (repeatable; default all
//!   three): `deadlock` (deadlock freedom or a counterexample),
//!   `throughput` (exact sustained rate per sink, statically),
//!   `bounds` (maximum reachable occupancy per relay station);
//! * `--env` — `declared` (default) checks the environment the netlist
//!   declares; `adversarial` universally quantifies over every
//!   environment for the deadlock proof (throughput/bounds are
//!   declared-environment notions and always use the declared checker);
//! * `--max-states` — state budget (default 65536);
//! * `--trace FILE` — write the counterexample (on deadlock) or the
//!   proved lasso schedule as Chrome-trace JSON;
//! * `--deny all` — also fail on non-verdicts: a truncated adversarial
//!   search (`unknown`) or an aperiodic declared-mode skip.
//!
//! Exit codes: 0 proofs passed, 1 deadlock proved (or denied
//! non-verdict), 2 usage or parse error.

use lip_graph::{parse_netlist_spanned, Netlist};
use lip_mc::{
    check_adversarial, check_declared, confirm_stuck, schedule_tracks, McConfig, McError, Schedule,
    Verdict,
};
use lip_obs::schedule_chrome_trace;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = run(&args.iter().map(String::as_str).collect::<Vec<_>>());
    std::process::exit(code);
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Prop {
    Deadlock,
    Throughput,
    Bounds,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Env {
    Declared,
    Adversarial,
}

struct Options {
    json: bool,
    props: Vec<Prop>,
    env: Env,
    deny_all: bool,
    trace: Option<String>,
    config: McConfig,
    files: Vec<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            json: false,
            props: Vec::new(),
            env: Env::Declared,
            deny_all: false,
            trace: None,
            config: McConfig::default(),
            files: Vec::new(),
        }
    }
}

fn parse_args(args: &[&str]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(&arg) = it.next() {
        match arg {
            "--json" => opts.json = true,
            "--prove" => {
                let value = *it.next().ok_or("--prove needs a property")?;
                opts.props.push(match value {
                    "deadlock" => Prop::Deadlock,
                    "throughput" => Prop::Throughput,
                    "bounds" => Prop::Bounds,
                    other => return Err(format!("unknown property `{other}`")),
                });
            }
            "--env" => {
                let value = *it.next().ok_or("--env needs a mode")?;
                opts.env = match value {
                    "declared" => Env::Declared,
                    "adversarial" => Env::Adversarial,
                    other => return Err(format!("unknown environment mode `{other}`")),
                };
            }
            "--max-states" => {
                let value = *it.next().ok_or("--max-states needs a number")?;
                opts.config.max_states = value
                    .parse()
                    .map_err(|_| format!("bad state budget `{value}`"))?;
            }
            "--trace" => {
                let value = *it.next().ok_or("--trace needs a file")?;
                opts.trace = Some(value.to_owned());
            }
            "--deny" => {
                let value = *it.next().ok_or("--deny needs `all`")?;
                if !value.eq_ignore_ascii_case("all") {
                    return Err(format!("--deny takes `all`, got `{value}`"));
                }
                opts.deny_all = true;
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            file => opts.files.push(file.to_owned()),
        }
    }
    if opts.props.is_empty() {
        opts.props = vec![Prop::Deadlock, Prop::Throughput, Prop::Bounds];
    }
    if opts.files.is_empty() {
        return Err("no input files".to_owned());
    }
    Ok(opts)
}

fn usage(err: &str) -> i32 {
    eprintln!("error: {err}");
    eprintln!(
        "usage: lip_mc [--json] [--prove deadlock|throughput|bounds] \
         [--env declared|adversarial] [--max-states N] [--trace FILE] \
         [--deny all] <file.lid>..."
    );
    2
}

/// Minimal JSON string escaper (netlist names are identifiers, but be
/// exact anyway).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Everything proved about one file, for both renderers.
struct FileOutcome {
    file: String,
    /// Human lines already formatted.
    lines: Vec<String>,
    /// JSON fields already formatted (joined with commas).
    fields: Vec<String>,
    /// Proved deadlock (fails the run).
    deadlock: bool,
    /// Non-verdict: truncated or aperiodic skip (fails under --deny).
    unknown: bool,
}

fn run(args: &[&str]) -> i32 {
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(e) => return usage(&e),
    };
    let mut failed = false;
    let mut denied = false;
    let mut outcomes = Vec::new();
    for file in &opts.files {
        match check_file(file, &opts) {
            Ok(out) => {
                failed |= out.deadlock;
                denied |= out.unknown;
                outcomes.push(out);
            }
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        }
    }
    if opts.json {
        let mut doc = format!(
            "{{\n  \"schema_version\": {},\n  \"files\": [\n",
            lip_obs::schema::MC
        );
        for (i, out) in outcomes.iter().enumerate() {
            let comma = if i + 1 < outcomes.len() { "," } else { "" };
            doc.push_str(&format!(
                "    {{\"file\": \"{}\", {}}}{comma}\n",
                escape(&out.file),
                out.fields.join(", ")
            ));
        }
        doc.push_str("  ]\n}\n");
        print!("{doc}");
    } else {
        for out in &outcomes {
            for line in &out.lines {
                println!("{}: {line}", out.file);
            }
        }
    }
    i32::from(failed || (opts.deny_all && denied))
}

fn check_file(file: &str, opts: &Options) -> Result<FileOutcome, String> {
    let text =
        std::fs::read_to_string(file).map_err(|e| format!("error: cannot read `{file}`: {e}"))?;
    let parsed = parse_netlist_spanned(&text)
        .map_err(|e| format!("{file}:{}: error[parse]: {}", e.span, e.message()))?;
    let netlist = parsed.netlist;
    netlist
        .validate()
        .map_err(|e| format!("{file}: error[validate]: {e}"))?;

    let mut out = FileOutcome {
        file: file.to_owned(),
        lines: Vec::new(),
        fields: Vec::new(),
        deadlock: false,
        unknown: false,
    };
    let declared = check_declared(&netlist, &opts.config);
    match &declared {
        Ok(proof) => {
            out.fields.push(format!(
                "\"states\": {}, \"stem\": {}, \"period\": {}",
                proof.states, proof.stem, proof.period
            ));
            out.lines.push(format!(
                "explored {} states (stem {}, period {})",
                proof.states, proof.stem, proof.period
            ));
        }
        Err(McError::Aperiodic) => {
            out.unknown = true;
            out.fields.push("\"skipped\": \"aperiodic\"".to_owned());
            out.lines
                .push("skipped: aperiodic endpoint pattern (declared mode)".to_owned());
        }
        Err(McError::StateCap { visited, cap }) => {
            out.unknown = true;
            out.fields
                .push("\"skipped\": \"state_space_cap\"".to_owned());
            out.lines.push(format!(
                "skipped: state space exceeds budget ({visited} states, cap {cap})"
            ));
        }
        Err(e) => return Err(format!("{file}: error[mc]: {e}")),
    }

    for prop in &opts.props {
        match prop {
            Prop::Deadlock => prove_deadlock(&netlist, opts, &declared, &mut out)?,
            Prop::Throughput => {
                if let Ok(proof) = &declared {
                    let sinks: Vec<String> = proof
                        .throughput
                        .iter()
                        .map(|&(id, r)| {
                            format!(
                                "{{\"sink\": \"{}\", \"num\": {}, \"den\": {}}}",
                                escape(netlist.node(id).name()),
                                r.num(),
                                r.den()
                            )
                        })
                        .collect();
                    out.fields
                        .push(format!("\"throughput\": [{}]", sinks.join(", ")));
                    match proof.system_throughput() {
                        Some(r) => out.lines.push(format!(
                            "proved throughput {}/{} ({:.3})",
                            r.num(),
                            r.den(),
                            r.to_f64()
                        )),
                        None => out.lines.push("no sinks: no throughput".to_owned()),
                    }
                }
            }
            Prop::Bounds => {
                if let Ok(proof) = &declared {
                    let relays: Vec<String> = proof
                        .relay_bounds
                        .iter()
                        .map(|&(id, occ, cap)| {
                            format!(
                                "{{\"relay\": \"{}\", \"max_occupancy\": {occ}, \"capacity\": {cap}}}",
                                escape(netlist.node(id).name())
                            )
                        })
                        .collect();
                    out.fields
                        .push(format!("\"relay_bounds\": [{}]", relays.join(", ")));
                    for &(id, occ, cap) in &proof.relay_bounds {
                        out.lines.push(format!(
                            "relay {}: max occupancy {occ} of {cap}",
                            netlist.node(id).name()
                        ));
                    }
                }
            }
        }
    }
    Ok(out)
}

fn prove_deadlock(
    netlist: &Netlist,
    opts: &Options,
    declared: &Result<lip_mc::DeclaredProof, McError>,
    out: &mut FileOutcome,
) -> Result<(), String> {
    let (verdict, cex, trace_schedule): (Verdict, _, Option<Schedule>) = match opts.env {
        Env::Declared => match declared {
            Ok(proof) => {
                let verdict = if proof.deadlock() {
                    Verdict::Deadlock
                } else {
                    Verdict::DeadlockFree
                };
                (
                    verdict,
                    proof.counterexample(netlist),
                    Some(proof.schedule.clone()),
                )
            }
            Err(_) => (Verdict::Unknown, None, None),
        },
        Env::Adversarial => {
            let proof =
                check_adversarial(netlist, &opts.config).map_err(|e| format!("error[mc]: {e}"))?;
            out.fields.push(format!(
                "\"adversarial_states\": {}, \"complete\": {}",
                proof.states, proof.complete
            ));
            let sched = proof.counterexample.as_ref().map(|c| c.schedule.clone());
            (proof.verdict, proof.counterexample, sched)
        }
    };
    out.fields.push(format!("\"verdict\": \"{verdict}\""));
    match verdict {
        Verdict::DeadlockFree => out.lines.push("proved deadlock-free".to_owned()),
        Verdict::Unknown => {
            out.unknown = true;
            out.lines
                .push("deadlock verdict unknown (state budget exceeded)".to_owned());
        }
        Verdict::Deadlock => {
            out.deadlock = true;
            if let Some(cex) = &cex {
                confirm_stuck(netlist, cex)
                    .map_err(|e| format!("error[mc]: counterexample failed replay: {e}"))?;
                out.lines.push(format!(
                    "DEADLOCK proved: wedged after {} cycles (counterexample replayed)",
                    cex.schedule.len()
                ));
            } else {
                out.lines.push("DEADLOCK proved".to_owned());
            }
        }
    }
    if let Some(path) = &opts.trace {
        // Counterexample when deadlocked, else the proved lasso.
        let schedule = cex
            .as_ref()
            .map_or(trace_schedule, |c| Some(c.schedule.clone()));
        if let Some(schedule) = schedule {
            let tracks = schedule_tracks(netlist, &schedule)
                .map_err(|e| format!("error[mc]: trace replay: {e}"))?;
            let json = schedule_chrome_trace("lip-mc", &tracks);
            std::fs::write(path, json).map_err(|e| format!("error: cannot write `{path}`: {e}"))?;
            eprintln!("trace: wrote {path}");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIVE_CHAIN: &str = "source in\n\
                              shell a identity\n\
                              relay r full\n\
                              shell b identity\n\
                              sink out\n\
                              connect in:0 -> a:0\n\
                              connect a:0 -> r:0\n\
                              connect r:0 -> b:0\n\
                              connect b:0 -> out:0\n";

    fn temp_file(name: &str, contents: &str) -> String {
        let dir = std::env::temp_dir().join("lip_mc_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, contents).unwrap();
        path.to_str().unwrap().to_owned()
    }

    #[test]
    fn parses_flags() {
        let opts = parse_args(&[
            "--json",
            "--prove",
            "deadlock",
            "--env",
            "adversarial",
            "--max-states",
            "100",
            "--deny",
            "all",
            "x.lid",
        ])
        .unwrap();
        assert!(opts.json && opts.deny_all);
        assert_eq!(opts.config.max_states, 100);
        assert!(matches!(opts.env, Env::Adversarial));
        assert_eq!(opts.props, vec![Prop::Deadlock]);
        assert!(parse_args(&["--prove", "bogus", "x"]).is_err());
        assert!(parse_args(&["--env", "bogus", "x"]).is_err());
        assert!(parse_args(&["--deny", "LIP001", "x"]).is_err());
        assert!(parse_args(&[]).is_err());
    }

    #[test]
    fn proves_a_live_chain_clean() {
        let file = temp_file("live.lid", LIVE_CHAIN);
        assert_eq!(run(&[&file]), 0);
        assert_eq!(run(&["--json", "--deny", "all", &file]), 0);
        assert_eq!(
            run(&["--env", "adversarial", "--prove", "deadlock", &file]),
            0
        );
    }

    #[test]
    fn budget_exhaustion_is_denied_only_with_deny_all() {
        let file = temp_file("budget.lid", LIVE_CHAIN);
        let args = [
            "--env",
            "adversarial",
            "--prove",
            "deadlock",
            "--max-states",
            "1",
            &file,
        ];
        assert_eq!(run(&args), 0);
        let mut denied = vec!["--deny", "all"];
        denied.extend_from_slice(&args);
        assert_eq!(run(&denied), 1);
    }

    #[test]
    fn parse_errors_exit_2() {
        let file = temp_file("broken.lid", "relay r fifo:1\n");
        assert_eq!(run(&[&file]), 2);
        assert_eq!(run(&["missing-file.lid"]), 2);
    }

    #[test]
    fn trace_writes_a_chrome_document() {
        let file = temp_file("trace.lid", LIVE_CHAIN);
        let trace = temp_file("trace.json", "");
        assert_eq!(run(&["--prove", "deadlock", "--trace", &trace, &file]), 0);
        let json = std::fs::read_to_string(&trace).unwrap();
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("shell a"));
    }
}
