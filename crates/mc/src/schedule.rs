//! Counterexample schedules: recording, replay, validation and trace
//! export.
//!
//! Both search modes talk about environment behaviour as an explicit
//! cycle-by-cycle [`Schedule`] of [`EnvChoice`]s — exactly the values
//! [`SkeletonSystem::step_with`] consumes. A schedule is therefore
//! *replayable*: feeding it to a fresh skeleton reproduces the proved
//! trajectory bit for bit, which is how every deadlock counterexample is
//! validated ([`confirm_stuck`]) and how traces are rendered
//! ([`schedule_tracks`] → [`lip_obs::schedule_chrome_trace`]).
//!
//! One subtlety, inherited from the protocol itself: a stopped source
//! *holds* its offer, so the offer stream is state, not a pure function
//! of the cycle. Recorded schedules store the offer each source actually
//! presented (via [`SkeletonSystem::source_offers`]); on replay the
//! override agrees with the held value exactly when the hold rule makes
//! the override irrelevant, so the trajectory is reproduced exactly.

use lip_analysis::transient_bound;
use lip_graph::{Netlist, NetlistError, NodeKind};
use lip_obs::{ScheduleSlice, ScheduleTrack};
use lip_sim::SkeletonSystem;

/// One cycle's environment behaviour: which sources offer a valid token
/// and which sinks assert stop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvChoice {
    /// Validity offered by each source, in source-row (node-id) order.
    pub source_valid: Vec<bool>,
    /// Stop asserted by each sink, in sink-row (node-id) order.
    pub sink_stop: Vec<bool>,
}

/// A finite cycle-by-cycle environment schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schedule {
    /// The choice applied at each cycle, in order.
    pub choices: Vec<EnvChoice>,
}

impl Schedule {
    /// Number of cycles the schedule covers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// `true` when the schedule covers no cycles.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }
}

/// A proved deadlock: the schedule that drives a fresh system into the
/// stuck state, and the stuck state itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// Environment schedule from reset into the stuck state.
    pub schedule: Schedule,
    /// The wedged control state
    /// ([`SkeletonSystem::component_state`]) the schedule lands in.
    pub stuck_state: Vec<u64>,
    /// The environment that keeps the system wedged, cycled forever
    /// after `schedule` ends. `None` means the wedge is
    /// environment-independent (an adversarial-mode verdict): no
    /// environment whatsoever can revive the system, and validation
    /// drives it with the fully permissive one. Declared-mode wedges
    /// hold only under the declared environment, so they carry its
    /// steady-state period here.
    pub continuation: Option<Schedule>,
}

/// Replay `schedule` on a fresh skeleton of `netlist` and return the
/// resulting system (positioned *after* the last choice).
///
/// # Errors
///
/// Propagates [`NetlistError`] from elaboration.
pub fn replay(netlist: &Netlist, schedule: &Schedule) -> Result<SkeletonSystem, NetlistError> {
    let mut sys = SkeletonSystem::new(netlist)?;
    for choice in &schedule.choices {
        sys.step_with(&choice.source_valid, &choice.sink_stop);
    }
    Ok(sys)
}

/// Validate a deadlock counterexample against the real simulator: the
/// replayed schedule must land exactly in the proved stuck state, and
/// from there the continuation environment must not fire a single shell
/// within the system's transient bound — the cycled
/// [`Counterexample::continuation`] when the wedge is relative to the
/// declared environment, or the fully permissive environment (every
/// source offering, no sink stopping) when the proof says no
/// environment can revive the system.
///
/// # Errors
///
/// Returns a description of the first discrepancy: elaboration failure,
/// a final state that differs from the proved one, or a shell that
/// fired after the supposed deadlock.
pub fn confirm_stuck(netlist: &Netlist, cex: &Counterexample) -> Result<(), String> {
    let mut sys = replay(netlist, &cex.schedule).map_err(|e| format!("elaboration: {e}"))?;
    let landed = sys.component_state();
    if landed != cex.stuck_state {
        return Err(format!(
            "replay landed in {landed:?}, proof says {:?}",
            cex.stuck_state
        ));
    }
    let fires_before = sys.total_fires();
    let horizon = usize::try_from(transient_bound(netlist)).unwrap_or(usize::MAX - 4) + 4;
    let mut stepped = 0usize;
    match &cex.continuation {
        Some(cont) if !cont.is_empty() => {
            while stepped < horizon {
                for choice in &cont.choices {
                    sys.step_with(&choice.source_valid, &choice.sink_stop);
                    stepped += 1;
                }
            }
        }
        _ => {
            let all_valid = vec![true; netlist.sources().len()];
            let no_stop = vec![false; netlist.sinks().len()];
            for _ in 0..horizon {
                sys.step_with(&all_valid, &no_stop);
                stepped += 1;
            }
        }
    }
    let fired = sys.total_fires() - fires_before;
    if fired != 0 {
        return Err(format!(
            "{fired} shell firings within {stepped} continuation cycles after the supposed deadlock"
        ));
    }
    Ok(())
}

/// Push one slice per maximal run of `true` in `flags` onto `slices`.
fn runs(flags: &[bool], name: &str, cat: &str, slices: &mut Vec<ScheduleSlice>) {
    let mut start = None;
    for (t, &f) in flags.iter().enumerate() {
        match (f, start) {
            (true, None) => start = Some(t as u64),
            (false, Some(s)) => {
                slices.push(ScheduleSlice {
                    name: name.to_owned(),
                    cat: cat.to_owned(),
                    start: s,
                    end: t as u64,
                });
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        slices.push(ScheduleSlice {
            name: name.to_owned(),
            cat: cat.to_owned(),
            start: s,
            end: flags.len() as u64,
        });
    }
}

/// Render `schedule` as viewer tracks by replaying it: one track per
/// source (`valid` slices), sink (`stop` slices), shell (`fire` and
/// `stall` slices) and relay (`occ k/cap` slices per occupancy run).
///
/// Feed the result to [`lip_obs::schedule_chrome_trace`] for a
/// `chrome://tracing`-loadable counterexample.
///
/// # Errors
///
/// Propagates [`NetlistError`] from elaboration.
///
/// # Panics
///
/// Panics if `netlist` changed shape since the schedule was recorded
/// (mismatched source/sink arity).
pub fn schedule_tracks(
    netlist: &Netlist,
    schedule: &Schedule,
) -> Result<Vec<ScheduleTrack>, NetlistError> {
    let mut sys = SkeletonSystem::new(netlist)?;
    let sources = netlist.sources();
    let sinks = netlist.sinks();
    let shells = netlist.shells();
    let relays = netlist.relays();
    let cycles = schedule.len();

    let mut offers = vec![Vec::with_capacity(cycles); sources.len()];
    let mut stops = vec![Vec::with_capacity(cycles); sinks.len()];
    let mut fires = vec![Vec::with_capacity(cycles); shells.len()];
    let mut levels = vec![Vec::with_capacity(cycles); relays.len()];
    for choice in &schedule.choices {
        for (i, o) in sys.source_offers().iter().enumerate() {
            offers[i].push(*o);
        }
        for (k, &r) in relays.iter().enumerate() {
            levels[k].push(sys.relay_level(r).expect("relay row").0);
        }
        for (j, s) in choice.sink_stop.iter().enumerate() {
            stops[j].push(*s);
        }
        sys.step_with(&choice.source_valid, &choice.sink_stop);
        for (s, f) in sys.shell_fired().iter().enumerate() {
            fires[s].push(*f);
        }
    }

    let mut tracks = Vec::new();
    let track = |name: String, slices: Vec<ScheduleSlice>| ScheduleTrack { name, slices };
    for (i, &id) in sources.iter().enumerate() {
        let mut slices = Vec::new();
        runs(&offers[i], "valid", "env", &mut slices);
        tracks.push(track(format!("source {}", netlist.node(id).name()), slices));
    }
    for (j, &id) in sinks.iter().enumerate() {
        let mut slices = Vec::new();
        runs(&stops[j], "stop", "env", &mut slices);
        tracks.push(track(format!("sink {}", netlist.node(id).name()), slices));
    }
    for (s, &id) in shells.iter().enumerate() {
        let mut slices = Vec::new();
        runs(&fires[s], "fire", "shell", &mut slices);
        let stalled: Vec<bool> = fires[s].iter().map(|f| !f).collect();
        runs(&stalled, "stall", "shell", &mut slices);
        tracks.push(track(format!("shell {}", netlist.node(id).name()), slices));
    }
    for (k, &id) in relays.iter().enumerate() {
        let cap = match netlist.node(id).kind() {
            NodeKind::Relay { kind } => kind.capacity(),
            _ => unreachable!("relay row"),
        };
        let mut slices = Vec::new();
        let mut t = 0usize;
        while t < levels[k].len() {
            let occ = levels[k][t];
            let mut end = t + 1;
            while end < levels[k].len() && levels[k][end] == occ {
                end += 1;
            }
            if occ > 0 {
                slices.push(ScheduleSlice {
                    name: format!("occ {occ}/{cap}"),
                    cat: "relay".to_owned(),
                    start: t as u64,
                    end: end as u64,
                });
            }
            t = end;
        }
        tracks.push(track(format!("relay {}", netlist.node(id).name()), slices));
    }
    Ok(tracks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_find_maximal_intervals() {
        let mut slices = Vec::new();
        runs(
            &[true, true, false, true, false, false, true],
            "x",
            "c",
            &mut slices,
        );
        let spans: Vec<(u64, u64)> = slices.iter().map(|s| (s.start, s.end)).collect();
        assert_eq!(spans, vec![(0, 2), (3, 4), (6, 7)]);
    }

    #[test]
    fn empty_schedule_replays_to_reset() {
        let netlist = lip_graph::generate::fig1().netlist;
        let sys = replay(&netlist, &Schedule::default()).unwrap();
        assert_eq!(sys.cycle(), 0);
        assert_eq!(sys.total_fires(), 0);
    }
}
