//! State-space regression suite: the exact reachable-state counts,
//! lasso shapes, throughputs and occupancy certificates of the named
//! designs are *pinned*. Any change to the skeleton semantics, the
//! compiled `SettleProgram`, or the checker's interning that perturbs
//! the reachable space shows up here as an exact-number diff — not as
//! a silent drift in a sampled measurement.
//!
//! The second half is a property: for random systems wedged by an
//! injected blocking environment, every counterexample the checker
//! emits must replay on the real [`SkeletonSystem`](lip_sim::SkeletonSystem)
//! into the proved stuck state ([`confirm_stuck`]).

use lip_core::{Pattern, RelayKind};
use lip_graph::{generate, Netlist};
use lip_mc::{check_declared, confirm_stuck, McConfig, McError};
use lip_sim::Ratio;
use proptest::prelude::*;

/// Prove `netlist` under the default config, panicking on any error.
fn prove(netlist: &Netlist) -> lip_mc::DeclaredProof {
    check_declared(netlist, &McConfig::default()).expect("declared proof")
}

/// Occupancy bound for the relay named `name`, as `(occ, cap)`.
fn bound(netlist: &Netlist, proof: &lip_mc::DeclaredProof, name: &str) -> (u32, u32) {
    let hit = proof
        .relay_bounds
        .iter()
        .find(|&&(id, _, _)| netlist.node(id).name() == name);
    let &(_, occ, cap) = hit.unwrap_or_else(|| panic!("no bound for relay {name}"));
    (occ, cap)
}

/// Parse a shipped `.lid` design relative to the workspace root.
fn shipped(name: &str) -> Netlist {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../designs")
        .join(name);
    let src = std::fs::read_to_string(&path).expect("read design");
    lip_graph::parse_netlist(&src).expect("parse design").0
}

#[test]
fn fig1_reachable_space_is_pinned() {
    let fig1 = generate::fig1();
    let proof = prove(&fig1.netlist);
    assert_eq!(proof.states, 7, "reachable states");
    assert_eq!((proof.stem, proof.period), (2, 5), "lasso shape");
    assert!(proof.is_live());
    assert_eq!(proof.system_throughput(), Some(Ratio::new(4, 5)));
    // Bounded occupancy: the long branch never fills, the short branch
    // (where the paper's stop propagates) saturates.
    for id in &fig1.long_relays {
        let name = fig1.netlist.node(*id).name().to_owned();
        assert_eq!(bound(&fig1.netlist, &proof, &name), (1, 2), "long {name}");
    }
    for id in &fig1.short_relays {
        let name = fig1.netlist.node(*id).name().to_owned();
        assert_eq!(bound(&fig1.netlist, &proof, &name), (2, 2), "short {name}");
    }
}

#[test]
fn shipped_fig1_matches_generated() {
    let proof = prove(&shipped("fig1.lid"));
    assert_eq!(proof.states, 7);
    assert_eq!((proof.stem, proof.period), (2, 5));
    assert_eq!(proof.system_throughput(), Some(Ratio::new(4, 5)));
}

#[test]
fn soc_design_reachable_space_is_pinned() {
    let netlist = shipped("soc.lid");
    let proof = prove(&netlist);
    assert_eq!(proof.states, 15, "reachable states");
    assert_eq!((proof.stem, proof.period), (8, 7), "lasso shape");
    assert!(proof.is_live());
    assert_eq!(proof.system_throughput(), Some(Ratio::new(6, 7)));
    for name in ["w1", "w2", "w3", "w4"] {
        assert_eq!(bound(&netlist, &proof, name), (2, 2), "{name}");
    }
    for name in ["w5", "w6"] {
        assert_eq!(bound(&netlist, &proof, name), (1, 1), "{name}");
    }
}

#[test]
fn ring_reachable_space_is_pinned() {
    let ring = generate::ring(2, 3, RelayKind::Full);
    let proof = prove(&ring.netlist);
    assert_eq!(proof.states, 5, "reachable states");
    assert_eq!((proof.stem, proof.period), (0, 5), "lasso shape");
    assert!(proof.is_live());
    assert_eq!(proof.system_throughput(), Some(Ratio::new(2, 5)));
}

#[test]
fn buffered_loop_design_is_a_fixpoint() {
    let proof = prove(&shipped("buffered_loop.lid"));
    assert_eq!(proof.states, 1, "a balanced loop settles to one state");
    assert_eq!((proof.stem, proof.period), (0, 1));
    assert!(proof.is_live());
    assert_eq!(proof.system_throughput(), Some(Ratio::new(1, 1)));
}

#[test]
fn state_cap_is_reported_not_silently_truncated() {
    let fig1 = generate::fig1().netlist;
    let err = check_declared(&fig1, &McConfig { max_states: 3 }).unwrap_err();
    assert!(
        matches!(err, McError::StateCap { visited, cap: 3 } if visited > 3),
        "got {err:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Injecting a permanently blocking environment (dead source or
    /// stalled sink) into a random live system wedges it, and the
    /// emitted counterexample replays to the proved stuck state.
    #[test]
    fn counterexamples_replay_to_real_deadlocks(
        family_seed in 0u64..64,
        kill_sink in any::<bool>(),
    ) {
        let (_, mut netlist) = generate::random_family(family_seed);
        if netlist.validate().is_err() {
            return Ok(());
        }
        let victims = if kill_sink { netlist.sinks() } else { netlist.sources() };
        let Some(&victim) = victims.first() else { return Ok(()) };
        let blocked = Pattern::EveryNth { period: 1, phase: 0 };
        if kill_sink {
            netlist.set_sink_pattern(victim, blocked);
        } else {
            netlist.set_source_pattern(victim, blocked);
        }
        if netlist.validate().is_err() {
            return Ok(());
        }
        let proof = prove(&netlist);
        prop_assert!(proof.deadlock(), "blocked endpoint must wedge some shell");
        let cex = proof.counterexample(&netlist).expect("deadlock carries a counterexample");
        if let Err(e) = confirm_stuck(&netlist, &cex) {
            return Err(TestCaseError::fail(format!("replay diverged: {e}")));
        }
    }
}
