//! Property tests over the netlist layer: structural invariants that
//! must survive generation and transformation.

use lip_core::RelayKind;
use lip_graph::{generate, topology, NetlistError};
use proptest::prelude::*;

proptest! {
    /// Every channel's endpoints are mutually consistent with the port
    /// maps, on every random instance.
    #[test]
    fn channel_port_maps_are_consistent(seed in 0u64..500) {
        let (_, n) = generate::random_family(seed);
        for (id, ch) in n.channels() {
            prop_assert_eq!(n.out_channel(ch.producer.node, ch.producer.index), Some(id));
            prop_assert_eq!(n.in_channel(ch.consumer.node, ch.consumer.index), Some(id));
        }
        // Successor/predecessor symmetry.
        for (id, _) in n.nodes() {
            for s in n.successors(id) {
                prop_assert!(n.predecessors(s).contains(&id));
            }
        }
    }

    /// The census adds up to the node count.
    #[test]
    fn census_partitions_nodes(seed in 0u64..500) {
        let (_, n) = generate::random_family(seed);
        let c = n.census();
        prop_assert_eq!(
            c.sources + c.sinks + c.shells + c.full_relays + c.half_relays + c.fifo_relays,
            n.node_count()
        );
        prop_assert!(c.buffered_shells <= c.shells);
    }

    /// SCCs partition the node set.
    #[test]
    fn sccs_partition_nodes(seed in 0u64..300) {
        let (_, n) = generate::random_family(seed);
        let comps = topology::sccs(&n);
        let total: usize = comps.iter().map(Vec::len).sum();
        prop_assert_eq!(total, n.node_count());
        let mut seen = std::collections::HashSet::new();
        for comp in &comps {
            for id in comp {
                prop_assert!(seen.insert(*id), "node {} in two SCCs", id);
            }
        }
    }

    /// Inserting a relay station on any channel of a valid netlist keeps
    /// it valid and preserves the topology class.
    #[test]
    fn insertion_preserves_validity(seed in 0u64..300, pick in 0usize..64, half in any::<bool>()) {
        let (_, mut n) = generate::random_family(seed);
        if n.validate().is_err() {
            return Ok(());
        }
        let class = topology::classify(&n);
        let channels: Vec<_> = n.channels().map(|(id, _)| id).collect();
        let ch = channels[pick % channels.len()];
        let kind = if half { RelayKind::Half } else { RelayKind::Full };
        n.insert_relay_on_channel(ch, kind);
        prop_assert!(n.validate().is_ok());
        prop_assert_eq!(topology::classify(&n), class);
    }

    /// Substituting every half station with a full one keeps validity
    /// (the cure's building block can never break a netlist).
    #[test]
    fn substitution_preserves_validity(seed in 0u64..300) {
        let (_, mut n) = generate::random_family(seed);
        if n.validate().is_err() {
            return Ok(());
        }
        for r in n.relays() {
            n.set_relay_kind(r, RelayKind::Full);
        }
        prop_assert!(n.validate().is_ok());
    }

    /// Paths returned by simple_paths are genuinely simple and connect
    /// the endpoints.
    #[test]
    fn simple_paths_are_simple(seed in 0u64..200) {
        let (_, n) = generate::random_family(seed);
        let sources = n.sources();
        let sinks = n.sinks();
        if sources.is_empty() || sinks.is_empty() {
            return Ok(());
        }
        for path in topology::simple_paths(&n, sources[0], sinks[0], 16) {
            prop_assert_eq!(path.first(), Some(&sources[0]));
            prop_assert_eq!(path.last(), Some(&sinks[0]));
            let set: std::collections::HashSet<_> = path.iter().collect();
            prop_assert_eq!(set.len(), path.len(), "repeated node in {:?}", path);
            // Consecutive nodes are actually connected.
            for w in path.windows(2) {
                prop_assert!(n.successors(w[0]).contains(&w[1]));
            }
        }
    }

    /// Classification is total and consistent with acyclicity.
    #[test]
    fn classification_matches_acyclicity(seed in 0u64..300) {
        let (_, n) = generate::random_family(seed);
        let class = topology::classify(&n);
        match class {
            topology::TopologyClass::Feedback => prop_assert!(!topology::is_acyclic(&n)),
            _ => prop_assert!(topology::is_acyclic(&n)),
        }
    }
}

/// Validation failures always carry actionable structure (never panic,
/// never an empty cycle).
#[test]
fn validation_errors_are_structured() {
    for seed in 0..200u64 {
        let (_, n) = generate::random_family(seed);
        match n.validate() {
            Ok(()) => {}
            Err(NetlistError::StopLoop { cycle } | NetlistError::DataLoop { cycle }) => {
                assert!(!cycle.is_empty());
            }
            Err(NetlistError::UnconnectedPort { .. }) => {
                panic!("generators must produce fully connected netlists (seed {seed})")
            }
            Err(e) => panic!("unexpected error {e} (seed {seed})"),
        }
    }
}
