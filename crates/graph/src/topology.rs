//! Topology analysis: the structural queries behind the paper's
//! performance formulas.
//!
//! The paper distinguishes three representative graph shapes:
//!
//! * **trees** — no node has two inputs; throughput 1, transient bounded
//!   by the longest relay path;
//! * **reconvergent feed-forward** — acyclic, but some shell joins paths
//!   with different relay latencies; the reverse-flowing stops create an
//!   *implicit* loop and throughput drops to `(m − i)/m`;
//! * **feedback** — real directed cycles; throughput `S/(S+R)`.
//!
//! This module classifies a [`Netlist`], finds strongly connected
//! components (Tarjan), enumerates simple cycles (Johnson-style with a
//! budget), and measures relay latencies along paths — everything
//! `lip-analysis` needs to evaluate the closed forms.

use std::collections::HashMap;

use lip_core::RelayKind;

use crate::netlist::{Netlist, NodeId, NodeKind};

/// The paper's topology taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyClass {
    /// Acyclic and join-free: every node has at most one input.
    Tree,
    /// Acyclic with at least one multi-input shell (reconvergent inputs).
    ReconvergentFeedForward,
    /// Contains at least one directed cycle.
    Feedback,
}

impl std::fmt::Display for TopologyClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyClass::Tree => f.write_str("tree"),
            TopologyClass::ReconvergentFeedForward => f.write_str("reconvergent feed-forward"),
            TopologyClass::Feedback => f.write_str("feedback"),
        }
    }
}

/// Classify `netlist` according to the paper's taxonomy.
#[must_use]
pub fn classify(netlist: &Netlist) -> TopologyClass {
    if !simple_cycles(netlist, 1).is_empty() {
        TopologyClass::Feedback
    } else if join_nodes(netlist).is_empty() {
        TopologyClass::Tree
    } else {
        TopologyClass::ReconvergentFeedForward
    }
}

/// Nodes with two or more inputs (joins — where reconvergence bites).
#[must_use]
pub fn join_nodes(netlist: &Netlist) -> Vec<NodeId> {
    netlist
        .nodes()
        .filter(|(_, n)| n.kind().num_inputs() >= 2)
        .map(|(id, _)| id)
        .collect()
}

/// Strongly connected components (Tarjan, iterative). Components are
/// returned in reverse topological order; singletons without self-loops
/// are included.
#[must_use]
pub fn sccs(netlist: &Netlist) -> Vec<Vec<NodeId>> {
    let n = netlist.node_count();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out: Vec<Vec<NodeId>> = Vec::new();

    // Iterative Tarjan: frame = (node, successor cursor).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut work: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&(v, cursor)) = work.last() {
            if cursor == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let succs = netlist.successors(node_id(v));
            if cursor < succs.len() {
                work.last_mut().expect("non-empty").1 += 1;
                let w = succs[cursor].index();
                if index[w] == usize::MAX {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("scc stack");
                        on_stack[w] = false;
                        comp.push(node_id(w));
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    out.push(comp);
                }
            }
        }
    }
    out
}

fn node_id(i: usize) -> NodeId {
    NodeId(u32::try_from(i).expect("node index"))
}

/// `true` if the netlist has no directed cycle.
#[must_use]
pub fn is_acyclic(netlist: &Netlist) -> bool {
    sccs(netlist).iter().all(|c| c.len() == 1)
        && netlist
            .nodes()
            .all(|(id, _)| !netlist.successors(id).contains(&id))
}

/// Enumerate up to `limit` simple directed cycles (each as a node list in
/// traversal order). A DFS-based enumeration adequate for the small
/// protocol graphs the paper studies; `limit` bounds worst-case blowup.
#[must_use]
pub fn simple_cycles(netlist: &Netlist, limit: usize) -> Vec<Vec<NodeId>> {
    let mut cycles: Vec<Vec<NodeId>> = Vec::new();
    let n = netlist.node_count();
    // For canonicalisation: only report cycles whose minimum node is the
    // DFS root, so each cycle is found exactly once.
    for root in 0..n {
        if cycles.len() >= limit {
            break;
        }
        let root_id = node_id(root);
        let mut path: Vec<NodeId> = vec![root_id];
        let mut on_path = vec![false; n];
        on_path[root] = true;
        let mut work: Vec<(NodeId, usize)> = vec![(root_id, 0)];
        while let Some(&(v, cursor)) = work.last() {
            if cycles.len() >= limit {
                break;
            }
            let succs = netlist.successors(v);
            if cursor < succs.len() {
                work.last_mut().expect("non-empty").1 += 1;
                let w = succs[cursor];
                if w == root_id {
                    cycles.push(path.clone());
                } else if w.index() > root && !on_path[w.index()] {
                    on_path[w.index()] = true;
                    path.push(w);
                    work.push((w, 0));
                }
            } else {
                work.pop();
                path.pop();
                on_path[v.index()] = false;
            }
        }
    }
    cycles
}

/// Per-cycle composition: shells, relay stations and initial tokens,
/// enough to evaluate the `S/(S+R)` loop formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleProfile {
    /// The nodes of the cycle, in traversal order.
    pub nodes: Vec<NodeId>,
    /// Shells on the cycle (`S`).
    pub shells: usize,
    /// Full relay stations on the cycle.
    pub full_relays: usize,
    /// Half relay stations on the cycle.
    pub half_relays: usize,
}

impl CycleProfile {
    /// Total relay stations (`R`).
    #[must_use]
    pub fn relays(&self) -> usize {
        self.full_relays + self.half_relays
    }

    /// Forward register stages around the loop (shells + full relays):
    /// the loop's recurrence length in cycles.
    #[must_use]
    pub fn stages(&self) -> usize {
        self.shells + self.full_relays
    }
}

/// Profile every simple cycle (bounded by `limit`).
#[must_use]
pub fn cycle_profiles(netlist: &Netlist, limit: usize) -> Vec<CycleProfile> {
    simple_cycles(netlist, limit)
        .into_iter()
        .map(|nodes| {
            let mut p = CycleProfile {
                nodes,
                shells: 0,
                full_relays: 0,
                half_relays: 0,
            };
            for id in &p.nodes.clone() {
                match netlist.node(*id).kind() {
                    NodeKind::Shell { .. } => p.shells += 1,
                    NodeKind::Relay {
                        kind: RelayKind::Full,
                    } => p.full_relays += 1,
                    NodeKind::Relay {
                        kind: RelayKind::Half,
                    } => p.half_relays += 1,
                    _ => {}
                }
            }
            p
        })
        .collect()
}

/// All simple paths from `from` to `to` (as node sequences including both
/// endpoints), up to `limit` paths. Used to measure branch imbalance at
/// joins.
#[must_use]
pub fn simple_paths(netlist: &Netlist, from: NodeId, to: NodeId, limit: usize) -> Vec<Vec<NodeId>> {
    let n = netlist.node_count();
    let mut out = Vec::new();
    let mut path = vec![from];
    let mut on_path = vec![false; n];
    on_path[from.index()] = true;
    let mut work: Vec<(NodeId, usize)> = vec![(from, 0)];
    while let Some(&(v, cursor)) = work.last() {
        if out.len() >= limit {
            break;
        }
        let succs = netlist.successors(v);
        if cursor < succs.len() {
            work.last_mut().expect("non-empty").1 += 1;
            let w = succs[cursor];
            if w == to {
                let mut p = path.clone();
                p.push(to);
                out.push(p);
            } else if !on_path[w.index()] {
                on_path[w.index()] = true;
                path.push(w);
                work.push((w, 0));
            }
        } else {
            work.pop();
            path.pop();
            on_path[v.index()] = false;
        }
    }
    out
}

/// Count relay stations along `path` (any kind), excluding endpoints'
/// own kind only if they are not relays themselves.
#[must_use]
pub fn relay_count(netlist: &Netlist, path: &[NodeId]) -> usize {
    path.iter()
        .filter(|id| netlist.node(**id).kind().is_relay())
        .count()
}

/// Count shells along `path`.
#[must_use]
pub fn shell_count(netlist: &Netlist, path: &[NodeId]) -> usize {
    path.iter()
        .filter(|id| netlist.node(**id).kind().is_shell())
        .count()
}

/// Forward latency along `path` in cycles (sum of node forward
/// latencies: shells and full relays contribute 1).
#[must_use]
pub fn path_latency(netlist: &Netlist, path: &[NodeId]) -> u64 {
    path.iter()
        .map(|id| netlist.node(*id).kind().forward_latency())
        .sum()
}

/// Longest source→sink forward latency in an acyclic netlist — the
/// paper's transient bound for trees ("the initial latency for each node
/// ... can be as much as the longest path in the tree").
///
/// Returns `None` if the netlist has cycles (use the transient analysis
/// in `lip-analysis` instead) or has no source/sink.
#[must_use]
pub fn longest_latency(netlist: &Netlist) -> Option<u64> {
    if !is_acyclic(netlist) {
        return None;
    }
    let sinks = netlist.sinks();
    if netlist.sources().is_empty() || sinks.is_empty() {
        return None;
    }
    // Longest path over the DAG by memoised DFS from every node.
    let mut memo: HashMap<NodeId, u64> = HashMap::new();
    fn go(netlist: &Netlist, v: NodeId, memo: &mut HashMap<NodeId, u64>) -> u64 {
        if let Some(&d) = memo.get(&v) {
            return d;
        }
        let best = netlist
            .successors(v)
            .into_iter()
            .map(|w| go(netlist, w, memo))
            .max()
            .unwrap_or(0);
        let d = best + netlist.node(v).kind().forward_latency();
        memo.insert(v, d);
        d
    }
    netlist
        .sources()
        .into_iter()
        .map(|s| go(netlist, s, &mut memo))
        .max()
}

/// Relay imbalance at a join: for shell `join`, the spread (max − min)
/// of relay-station counts over all simple paths from each common
/// ancestor or source to the join's inputs. This is the paper's `i`.
///
/// Concretely we measure, for each input port of the join, the maximum
/// relay count over simple paths from any source to that port, and return
/// the spread across ports. Sound for the feed-forward structures the
/// formula addresses.
#[must_use]
pub fn join_imbalance(netlist: &Netlist, join: NodeId) -> Option<usize> {
    let preds = netlist.predecessors(join);
    if preds.len() < 2 {
        return None;
    }
    let sources = netlist.sources();
    let mut per_port: Vec<usize> = Vec::new();
    for p in preds {
        let mut best: Option<usize> = None;
        for s in &sources {
            for path in simple_paths(netlist, *s, p, 64) {
                let r = relay_count(netlist, &path);
                best = Some(best.map_or(r, |b: usize| b.max(r)));
            }
        }
        per_port.push(best?);
    }
    let max = *per_port.iter().max()?;
    let min = *per_port.iter().min()?;
    Some(max - min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_core::pearl::{IdentityPearl, JoinPearl};
    use lip_core::RelayKind;

    fn tree() -> Netlist {
        let mut n = Netlist::new();
        let src = n.add_source("in");
        let a = n.add_shell("A", IdentityPearl::with_fanout(2));
        let b = n.add_shell("B", IdentityPearl::new());
        let c = n.add_shell("C", IdentityPearl::new());
        let o1 = n.add_sink("o1");
        let o2 = n.add_sink("o2");
        n.connect(src, 0, a, 0).unwrap();
        n.connect(a, 0, b, 0).unwrap();
        n.connect(a, 1, c, 0).unwrap();
        n.connect(b, 0, o1, 0).unwrap();
        n.connect(c, 0, o2, 0).unwrap();
        n
    }

    /// Fig. 1-like: two sources reconverge at a join with imbalanced
    /// relay counts.
    fn reconvergent(r_long: usize, r_short: usize) -> (Netlist, NodeId) {
        let mut n = Netlist::new();
        let a = n.add_source("A");
        let b = n.add_source("B");
        let c = n.add_shell("C", JoinPearl::first(2));
        let out = n.add_sink("out");
        n.connect_via_relays(a, 0, c, 0, r_long, RelayKind::Full)
            .unwrap();
        n.connect_via_relays(b, 0, c, 1, r_short, RelayKind::Full)
            .unwrap();
        n.connect(c, 0, out, 0).unwrap();
        (n, c)
    }

    /// Fig. 2-like: ring of `s` shells and `r` relays, with one sink tap.
    fn ring(s: usize, r: usize) -> Netlist {
        let mut n = Netlist::new();
        assert!(s >= 1);
        let shells: Vec<NodeId> = (0..s)
            .map(|i| {
                if i == 0 {
                    n.add_shell("tap", IdentityPearl::with_fanout(2))
                } else {
                    n.add_shell(format!("s{i}"), IdentityPearl::new())
                }
            })
            .collect();
        // Ring edges with relays distributed after shell 0.
        let mut prev = shells[0];
        let mut prev_port = 0usize;
        for _ in 0..r {
            let rs = n.add_relay(RelayKind::Full);
            n.connect(prev, prev_port, rs, 0).unwrap();
            prev = rs;
            prev_port = 0;
        }
        for sh in shells.iter().skip(1) {
            n.connect(prev, prev_port, *sh, 0).unwrap();
            prev = *sh;
            prev_port = 0;
        }
        // Close the ring into shell 0's input.
        n.connect(prev, prev_port, shells[0], 0).unwrap();
        // Tap to a sink from shell 0's second output.
        let out = n.add_sink("out");
        n.connect(shells[0], 1, out, 0).unwrap();
        n
    }

    #[test]
    fn classify_tree() {
        assert_eq!(classify(&tree()), TopologyClass::Tree);
        assert!(is_acyclic(&tree()));
        assert!(join_nodes(&tree()).is_empty());
    }

    #[test]
    fn classify_reconvergent() {
        let (n, c) = reconvergent(2, 1);
        assert_eq!(classify(&n), TopologyClass::ReconvergentFeedForward);
        assert_eq!(join_nodes(&n), vec![c]);
    }

    #[test]
    fn classify_feedback() {
        let n = ring(2, 1);
        assert_eq!(classify(&n), TopologyClass::Feedback);
        assert!(!is_acyclic(&n));
    }

    #[test]
    fn scc_finds_ring() {
        let n = ring(3, 2);
        let comps = sccs(&n);
        let big: Vec<_> = comps.iter().filter(|c| c.len() > 1).collect();
        assert_eq!(big.len(), 1);
        assert_eq!(big[0].len(), 5); // 3 shells + 2 relays
    }

    #[test]
    fn simple_cycles_counts_ring_once() {
        let n = ring(2, 1);
        let cycles = simple_cycles(&n, 16);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 3);
    }

    #[test]
    fn cycle_profiles_count_kinds() {
        let n = ring(2, 3);
        let profiles = cycle_profiles(&n, 16);
        assert_eq!(profiles.len(), 1);
        let p = &profiles[0];
        assert_eq!(p.shells, 2);
        assert_eq!(p.full_relays, 3);
        assert_eq!(p.half_relays, 0);
        assert_eq!(p.relays(), 3);
        assert_eq!(p.stages(), 5);
    }

    #[test]
    fn paths_and_latency() {
        let (n, c) = reconvergent(2, 1);
        let a = n.sources()[0];
        let paths = simple_paths(&n, a, c, 8);
        assert_eq!(paths.len(), 1);
        assert_eq!(relay_count(&n, &paths[0]), 2);
        assert_eq!(shell_count(&n, &paths[0]), 1); // the join itself
        assert_eq!(path_latency(&n, &paths[0]), 3); // 2 relays + join shell
    }

    #[test]
    fn join_imbalance_matches_relay_difference() {
        let (n, c) = reconvergent(2, 1);
        assert_eq!(join_imbalance(&n, c), Some(1));
        let (n, c) = reconvergent(4, 1);
        assert_eq!(join_imbalance(&n, c), Some(3));
        let (n, c) = reconvergent(3, 3);
        assert_eq!(join_imbalance(&n, c), Some(0));
    }

    #[test]
    fn longest_latency_of_tree() {
        let n = tree();
        // src(0) -> A(1) -> B(1) -> sink: total 2.
        assert_eq!(longest_latency(&n), Some(2));
        assert_eq!(longest_latency(&ring(2, 1)), None);
    }

    #[test]
    fn display_topology_class() {
        assert_eq!(TopologyClass::Tree.to_string(), "tree");
        assert_eq!(
            TopologyClass::ReconvergentFeedForward.to_string(),
            "reconvergent feed-forward"
        );
        assert_eq!(TopologyClass::Feedback.to_string(), "feedback");
    }
}
