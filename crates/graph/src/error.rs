//! Netlist construction and validation errors.

use std::error::Error;
use std::fmt;

use crate::netlist::NodeId;

/// Error building or validating a latency-insensitive netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A port index exceeded the node's arity.
    PortOutOfRange {
        /// Offending node.
        node: NodeId,
        /// Offending port index.
        port: usize,
        /// The node's arity in that direction.
        arity: usize,
        /// `true` for an output port, `false` for an input port.
        output: bool,
    },
    /// The port already drives / is driven by another channel.
    PortAlreadyConnected {
        /// Offending node.
        node: NodeId,
        /// Offending port index.
        port: usize,
        /// `true` for an output port, `false` for an input port.
        output: bool,
    },
    /// A port was left unconnected at validation time.
    UnconnectedPort {
        /// Offending node.
        node: NodeId,
        /// Offending port index.
        port: usize,
        /// `true` for an output port, `false` for an input port.
        output: bool,
    },
    /// A directed cycle contains no relay station: the backward `stop`
    /// path is purely combinational (shells do not store stops), which is
    /// the paper's minimum-memory violation.
    StopLoop {
        /// Nodes on the offending cycle.
        cycle: Vec<NodeId>,
    },
    /// A directed cycle contains neither a shell nor a full relay
    /// station: the forward `valid/data` path is purely combinational
    /// (half relay stations bypass while empty).
    DataLoop {
        /// Nodes on the offending cycle.
        cycle: Vec<NodeId>,
    },
    /// The netlist has no nodes of a kind an operation requires (for
    /// example measuring throughput with no sink).
    Empty {
        /// What was missing.
        what: &'static str,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn dir(output: bool) -> &'static str {
            if output {
                "output"
            } else {
                "input"
            }
        }
        match self {
            NetlistError::PortOutOfRange {
                node,
                port,
                arity,
                output,
            } => write!(
                f,
                "{} port {port} of node {node} out of range (arity {arity})",
                dir(*output)
            ),
            NetlistError::PortAlreadyConnected { node, port, output } => {
                write!(
                    f,
                    "{} port {port} of node {node} is already connected",
                    dir(*output)
                )
            }
            NetlistError::UnconnectedPort { node, port, output } => {
                write!(
                    f,
                    "{} port {port} of node {node} is not connected",
                    dir(*output)
                )
            }
            NetlistError::StopLoop { cycle } => write!(
                f,
                "cycle without any relay station (combinational stop loop): {}",
                fmt_cycle(cycle)
            ),
            NetlistError::DataLoop { cycle } => write!(
                f,
                "cycle without any shell or full relay station (combinational data loop): {}",
                fmt_cycle(cycle)
            ),
            NetlistError::Empty { what } => write!(f, "netlist has no {what}"),
        }
    }
}

fn fmt_cycle(cycle: &[NodeId]) -> String {
    cycle
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(" -> ")
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = NetlistError::StopLoop {
            cycle: vec![NodeId(0), NodeId(1)],
        };
        assert!(e.to_string().contains("combinational stop loop"));
        let e = NetlistError::UnconnectedPort {
            node: NodeId(3),
            port: 1,
            output: false,
        };
        assert_eq!(e.to_string(), "input port 1 of node n3 is not connected");
        let e = NetlistError::Empty { what: "sink" };
        assert_eq!(e.to_string(), "netlist has no sink");
    }
}
