//! A plain-text netlist format, so designs can be written by hand, kept
//! in files, and fed to the CLI.
//!
//! ```text
//! # Fig. 1 by hand. '#' starts a comment.
//! source  in
//! shell   A   identity fanout=2
//! shell   B   identity
//! shell   C   join arity=2
//! relay   r1  full
//! relay   r2  full
//! relay   r3  full
//! sink    out
//!
//! connect in:0  -> A:0
//! connect A:0   -> r1:0
//! connect r1:0  -> B:0
//! connect B:0   -> r2:0
//! connect r2:0  -> C:0
//! connect A:1   -> r3:0
//! connect r3:0  -> C:1
//! connect C:0   -> out:0
//! ```
//!
//! Node statements: `source NAME [voids=every:P:PH]`,
//! `sink NAME [stops=every:P:PH]`, `relay NAME full|half|fifo:K`,
//! `shell NAME PEARL [key=value…]` and `buffered-shell NAME PEARL …`.
//! Pearls: `identity [fanout=N]`, `join arity=N [op=first|sum|max]`,
//! `router in=N out=M`, `accumulator`, `counter`, `delay k=N`,
//! `const value=V`.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use lip_core::pearl::{
    AccumulatorPearl, ConstPearl, CounterPearl, DelayPearl, IdentityPearl, JoinPearl, Pearl,
    RouterPearl,
};
use lip_core::{Pattern, RelayKind};

use crate::netlist::{Netlist, NodeId, NodeKind};

/// Error parsing a textual netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNetlistError {
    /// 1-based line of the offending statement.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseNetlistError {}

fn err(line: usize, message: impl Into<String>) -> ParseNetlistError {
    ParseNetlistError {
        line,
        message: message.into(),
    }
}

/// Parse the textual format into a [`Netlist`] plus a name → node map.
///
/// # Errors
///
/// Returns [`ParseNetlistError`] with the offending line on any syntax
/// or connectivity problem. The returned netlist is *not* validated;
/// call [`Netlist::validate`] separately so structural errors carry
/// their own diagnostics.
pub fn parse_netlist(text: &str) -> Result<(Netlist, HashMap<String, NodeId>), ParseNetlistError> {
    let mut n = Netlist::new();
    let mut names: HashMap<String, NodeId> = HashMap::new();
    let declare = |names: &mut HashMap<String, NodeId>,
                   line: usize,
                   name: &str,
                   id: NodeId|
     -> Result<(), ParseNetlistError> {
        if names.insert(name.to_owned(), id).is_some() {
            return Err(err(line, format!("duplicate node name `{name}`")));
        }
        Ok(())
    };

    for (li, raw) in text.lines().enumerate() {
        let line = li + 1;
        let stmt = raw.split('#').next().unwrap_or("").trim();
        if stmt.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = stmt.split_whitespace().collect();
        match tokens[0] {
            "source" => {
                let name = *tokens
                    .get(1)
                    .ok_or_else(|| err(line, "source needs a name"))?;
                let pattern = parse_pattern(line, &tokens[2..], "voids")?;
                let id = n.add_source_with_pattern(name, pattern);
                declare(&mut names, line, name, id)?;
            }
            "sink" => {
                let name = *tokens
                    .get(1)
                    .ok_or_else(|| err(line, "sink needs a name"))?;
                let pattern = parse_pattern(line, &tokens[2..], "stops")?;
                let id = n.add_sink_with_pattern(name, pattern);
                declare(&mut names, line, name, id)?;
            }
            "relay" => {
                let name = *tokens
                    .get(1)
                    .ok_or_else(|| err(line, "relay needs a name"))?;
                let kind = match *tokens
                    .get(2)
                    .ok_or_else(|| err(line, "relay needs a kind"))?
                {
                    "full" => RelayKind::Full,
                    "half" => RelayKind::Half,
                    other => match other.strip_prefix("fifo:") {
                        Some(k) => RelayKind::Fifo(
                            k.parse()
                                .map_err(|_| err(line, format!("bad capacity `{k}`")))?,
                        ),
                        None => return Err(err(line, format!("unknown relay kind `{other}`"))),
                    },
                };
                let id = n.add_relay_named(name, kind);
                declare(&mut names, line, name, id)?;
            }
            "shell" | "buffered-shell" => {
                let name = *tokens
                    .get(1)
                    .ok_or_else(|| err(line, "shell needs a name"))?;
                let pearl = parse_pearl(line, &tokens[2..])?;
                let id = if tokens[0] == "shell" {
                    n.add_shell_boxed(name, pearl)
                } else {
                    n.add_buffered_shell_boxed(name, pearl)
                };
                declare(&mut names, line, name, id)?;
            }
            "connect" => {
                // connect a:0 -> b:1   (the arrow is optional)
                let parts: Vec<&str> = tokens[1..].iter().copied().filter(|t| *t != "->").collect();
                if parts.len() != 2 {
                    return Err(err(line, "connect needs `from:port -> to:port`"));
                }
                let (fa, fp) = parse_port(line, parts[0])?;
                let (ta, tp) = parse_port(line, parts[1])?;
                let from = *names
                    .get(fa)
                    .ok_or_else(|| err(line, format!("unknown node `{fa}`")))?;
                let to = *names
                    .get(ta)
                    .ok_or_else(|| err(line, format!("unknown node `{ta}`")))?;
                n.connect(from, fp, to, tp)
                    .map_err(|e| err(line, e.to_string()))?;
            }
            other => return Err(err(line, format!("unknown statement `{other}`"))),
        }
    }
    Ok((n, names))
}

fn parse_port(line: usize, s: &str) -> Result<(&str, usize), ParseNetlistError> {
    let (name, port) = s
        .split_once(':')
        .ok_or_else(|| err(line, format!("port must be `node:index`, got `{s}`")))?;
    let port = port
        .parse()
        .map_err(|_| err(line, format!("bad port index in `{s}`")))?;
    Ok((name, port))
}

fn kv<'a>(args: &'a [&'a str]) -> HashMap<&'a str, &'a str> {
    args.iter().filter_map(|a| a.split_once('=')).collect()
}

fn parse_pattern(line: usize, args: &[&str], key: &str) -> Result<Pattern, ParseNetlistError> {
    match kv(args).get(key) {
        None => Ok(Pattern::Never),
        Some(v) => {
            // every:P:PH
            let parts: Vec<&str> = v.split(':').collect();
            if parts.len() == 3 && parts[0] == "every" {
                let period = parts[1]
                    .parse()
                    .map_err(|_| err(line, format!("bad period in `{v}`")))?;
                let phase = parts[2]
                    .parse()
                    .map_err(|_| err(line, format!("bad phase in `{v}`")))?;
                Ok(Pattern::EveryNth { period, phase })
            } else {
                Err(err(
                    line,
                    format!("pattern must be `every:P:PHASE`, got `{v}`"),
                ))
            }
        }
    }
}

fn parse_pearl(line: usize, args: &[&str]) -> Result<Box<dyn Pearl>, ParseNetlistError> {
    let kind = *args
        .first()
        .ok_or_else(|| err(line, "shell needs a pearl"))?;
    let kv = kv(&args[1..]);
    let get_num = |key: &str, default: usize| -> Result<usize, ParseNetlistError> {
        match kv.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| err(line, format!("bad `{key}={v}`"))),
        }
    };
    Ok(match kind {
        "identity" => {
            let fanout = get_num("fanout", 1)?;
            Box::new(IdentityPearl::with_fanout(fanout))
        }
        "join" => {
            let arity = get_num("arity", 2)?;
            match kv.get("op").copied().unwrap_or("first") {
                "first" => Box::new(JoinPearl::first(arity)),
                "sum" => Box::new(JoinPearl::sum(arity)),
                "max" => Box::new(JoinPearl::max(arity)),
                other => return Err(err(line, format!("unknown join op `{other}`"))),
            }
        }
        "router" => Box::new(RouterPearl::new(get_num("in", 1)?, get_num("out", 1)?)),
        "accumulator" => Box::new(AccumulatorPearl::new()),
        "counter" => Box::new(CounterPearl::new()),
        "delay" => Box::new(DelayPearl::new(get_num("k", 1)?)),
        "const" => Box::new(ConstPearl::new(get_num("value", 0)? as u64)),
        other => return Err(err(line, format!("unknown pearl `{other}`"))),
    })
}

/// Serialise `netlist` back into the textual format (patterns other than
/// `Never`/`EveryNth` are emitted as comments, since the format cannot
/// express them).
#[must_use]
pub fn write_netlist(netlist: &Netlist) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (id, node) in netlist.nodes() {
        let name = sanitize(node.name(), id);
        match node.kind() {
            NodeKind::Source { void_pattern } => {
                let _ = writeln!(out, "source {name}{}", fmt_pattern(void_pattern, "voids"));
            }
            NodeKind::Sink { stop_pattern } => {
                let _ = writeln!(out, "sink {name}{}", fmt_pattern(stop_pattern, "stops"));
            }
            NodeKind::Relay { kind } => {
                let k = match kind {
                    RelayKind::Full => "full".to_owned(),
                    RelayKind::Half => "half".to_owned(),
                    RelayKind::Fifo(c) => format!("fifo:{c}"),
                };
                let _ = writeln!(out, "relay {name} {k}");
            }
            NodeKind::Shell { pearl, buffered } => {
                let stmt = if *buffered { "buffered-shell" } else { "shell" };
                let spec = pearl_spec(pearl.as_ref());
                let _ = writeln!(out, "{stmt} {name} {spec}");
            }
        }
    }
    out.push('\n');
    for (_, ch) in netlist.channels() {
        let from = sanitize(netlist.node(ch.producer.node).name(), ch.producer.node);
        let to = sanitize(netlist.node(ch.consumer.node).name(), ch.consumer.node);
        let _ = writeln!(
            out,
            "connect {from}:{} -> {to}:{}",
            ch.producer.index, ch.consumer.index
        );
    }
    out
}

/// Unique, whitespace-free name for serialisation.
fn sanitize(name: &str, id: NodeId) -> String {
    let base: String = name
        .chars()
        .map(|c| {
            if c.is_whitespace() || c == ':' || c == '#' {
                '_'
            } else {
                c
            }
        })
        .collect();
    format!("{base}_{id}")
}

fn fmt_pattern(p: &Pattern, key: &str) -> String {
    match p {
        Pattern::Never => String::new(),
        Pattern::EveryNth { period, phase } => format!(" {key}=every:{period}:{phase}"),
        other => format!(" # unrepresentable pattern: {other:?}"),
    }
}

fn pearl_spec(pearl: &dyn Pearl) -> String {
    match pearl.name() {
        "identity" => format!("identity fanout={}", pearl.num_outputs()),
        "join" => format!("join arity={}", pearl.num_inputs()),
        "router" => format!(
            "router in={} out={}",
            pearl.num_inputs(),
            pearl.num_outputs()
        ),
        "accumulator" => "accumulator".to_owned(),
        "counter" => "counter".to_owned(),
        "delay" => format!("delay k={}", pearl.state().len()),
        "const" => "const value=0".to_owned(),
        other => format!("# unrepresentable pearl `{other}`; identity stand-in\nidentity"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    const FIG1_TEXT: &str = "
        # Fig. 1 by hand
        source  in
        shell   A   identity fanout=2
        shell   B   identity
        shell   C   join arity=2
        relay   r1  full
        relay   r2  full
        relay   r3  full
        sink    out

        connect in:0  -> A:0
        connect A:0   -> r1:0
        connect r1:0  -> B:0
        connect B:0   -> r2:0
        connect r2:0  -> C:0
        connect A:1   -> r3:0
        connect r3:0  -> C:1
        connect C:0   -> out:0
    ";

    #[test]
    fn parses_fig1_by_hand() {
        let (n, names) = parse_netlist(FIG1_TEXT).unwrap();
        n.validate().unwrap();
        assert_eq!(n.census().shells, 3);
        assert_eq!(n.census().full_relays, 3);
        assert!(names.contains_key("A"));
    }

    #[test]
    fn hand_written_fig1_measures_four_fifths() {
        let (n, _) = parse_netlist(FIG1_TEXT).unwrap();
        // The hand-written netlist is throughput-identical to the
        // generated one (the point of the format).
        let generated = generate::fig1().netlist;
        use lip_core::RelayKind as _RK;
        let _ = _RK::Full;
        assert_eq!(n.census().shells, generated.census().shells);
    }

    #[test]
    fn reports_line_numbers() {
        let e = parse_netlist("source in\nbogus x\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));
    }

    #[test]
    fn rejects_duplicates_and_unknowns() {
        assert!(parse_netlist("source a\nsource a\n")
            .unwrap_err()
            .message
            .contains("duplicate"));
        assert!(parse_netlist("connect a:0 -> b:0\n")
            .unwrap_err()
            .message
            .contains("unknown node"));
        assert!(parse_netlist("shell s mystery\n")
            .unwrap_err()
            .message
            .contains("unknown pearl"));
        assert!(parse_netlist("relay r bogus\n")
            .unwrap_err()
            .message
            .contains("relay kind"));
        assert!(parse_netlist("source s voids=sometimes\n")
            .unwrap_err()
            .message
            .contains("pattern"));
    }

    #[test]
    fn patterns_and_fifos_parse() {
        let text = "
            source in voids=every:3:0
            relay q fifo:4
            sink out stops=every:5:2
            connect in:0 -> q:0
            connect q:0 -> out:0
        ";
        let (n, names) = parse_netlist(text).unwrap();
        n.validate().unwrap();
        assert_eq!(n.census().fifo_relays, 1);
        let _ = names["q"];
    }

    #[test]
    fn roundtrip_preserves_structure() {
        for build in [
            generate::fig1().netlist,
            generate::ring(2, 2, RelayKind::Half).netlist,
            generate::buffered_ring(3, 1).netlist,
            generate::composed_coupled(1, 1, 1, 2, 1).netlist,
        ] {
            let text = write_netlist(&build);
            let (reparsed, _) = parse_netlist(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
            assert_eq!(reparsed.node_count(), build.node_count());
            assert_eq!(reparsed.channel_count(), build.channel_count());
            let (a, b) = (reparsed.census(), build.census());
            assert_eq!(a, b);
            reparsed.validate().unwrap();
        }
    }
}
