//! A plain-text netlist format, so designs can be written by hand, kept
//! in files, and fed to the CLI.
//!
//! ```text
//! # Fig. 1 by hand. '#' starts a comment.
//! source  in
//! shell   A   identity fanout=2
//! shell   B   identity
//! shell   C   join arity=2
//! relay   r1  full
//! relay   r2  full
//! relay   r3  full
//! sink    out
//!
//! connect in:0  -> A:0
//! connect A:0   -> r1:0
//! connect r1:0  -> B:0
//! connect B:0   -> r2:0
//! connect r2:0  -> C:0
//! connect A:1   -> r3:0
//! connect r3:0  -> C:1
//! connect C:0   -> out:0
//! ```
//!
//! Node statements: `source NAME [voids=every:P:PH]`,
//! `sink NAME [stops=every:P:PH]`, `relay NAME full|half|fifo:K`,
//! `shell NAME PEARL [key=value…]` and `buffered-shell NAME PEARL …`.
//! Pearls: `identity [fanout=N]`, `join arity=N [op=first|sum|max]`,
//! `router in=N out=M`, `accumulator`, `counter`, `delay k=N`,
//! `const value=V`.
//!
//! [`parse_netlist_spanned`] additionally returns a [`SourceMap`]
//! recording the line/column every node and channel was declared at, so
//! downstream diagnostics (notably the `lip-lint` rules) can point back
//! into the file. Parse errors carry the same [`Span`] machinery plus a
//! structured [`ParseErrorKind`].

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use lip_core::pearl::{
    AccumulatorPearl, ConstPearl, CounterPearl, DelayPearl, IdentityPearl, JoinPearl, Pearl,
    RouterPearl,
};
use lip_core::{Pattern, RelayKind};

use crate::netlist::{Netlist, NodeId, NodeKind};
use crate::span::{SourceMap, Span};
use crate::NetlistError;

/// What went wrong while parsing a textual netlist, without the
/// position (see [`ParseNetlistError`] for the spanned wrapper).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseErrorKind {
    /// A node statement is missing its name token.
    MissingName {
        /// The statement keyword (`source`, `relay`, …).
        statement: &'static str,
    },
    /// `relay NAME` without a kind token.
    MissingRelayKind,
    /// A relay kind other than `full`, `half` or `fifo:K`.
    UnknownRelayKind(String),
    /// `fifo:K` whose capacity is not an integer ≥ 2 (a fifo relay
    /// station needs at least the two places of a full relay station).
    BadFifoCapacity(String),
    /// `shell NAME` without a pearl token.
    MissingPearl,
    /// An unrecognised pearl name.
    UnknownPearl(String),
    /// An unrecognised `op=` value on a join pearl.
    UnknownJoinOp(String),
    /// A `key=value` argument whose value is not a number.
    BadNumber {
        /// The argument key.
        key: String,
        /// The offending value.
        value: String,
    },
    /// A `voids=`/`stops=` pattern that is not `every:P:PHASE`.
    BadPattern(String),
    /// A connect endpoint that is not `node:index`.
    BadPort(String),
    /// A `connect` statement without exactly two endpoints.
    MalformedConnect,
    /// An unknown statement keyword.
    UnknownStatement(String),
    /// A node name declared twice.
    DuplicateName(String),
    /// A connect endpoint naming an undeclared node.
    UnknownNode(String),
    /// The underlying [`Netlist::connect`] rejected the channel.
    Connect(NetlistError),
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingName { statement } => write!(f, "{statement} needs a name"),
            Self::MissingRelayKind => {
                write!(f, "relay needs a kind: `full`, `half` or `fifo:K`")
            }
            Self::UnknownRelayKind(k) => write!(f, "unknown relay kind `{k}`"),
            Self::BadFifoCapacity(k) => {
                write!(f, "bad fifo capacity `{k}` (must be an integer >= 2)")
            }
            Self::MissingPearl => write!(f, "shell needs a pearl"),
            Self::UnknownPearl(p) => write!(f, "unknown pearl `{p}`"),
            Self::UnknownJoinOp(op) => write!(f, "unknown join op `{op}`"),
            Self::BadNumber { key, value } => write!(f, "bad `{key}={value}`"),
            Self::BadPattern(p) => write!(f, "pattern must be `every:P:PHASE`, got `{p}`"),
            Self::BadPort(p) => write!(f, "port must be `node:index`, got `{p}`"),
            Self::MalformedConnect => write!(f, "connect needs `from:port -> to:port`"),
            Self::UnknownStatement(s) => write!(f, "unknown statement `{s}`"),
            Self::DuplicateName(n) => write!(f, "duplicate node name `{n}`"),
            Self::UnknownNode(n) => write!(f, "unknown node `{n}`"),
            Self::Connect(e) => write!(f, "{e}"),
        }
    }
}

/// Error parsing a textual netlist: a structured [`ParseErrorKind`]
/// plus the [`Span`] of the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNetlistError {
    /// Position of the offending token (1-based line and column).
    pub span: Span,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

impl ParseNetlistError {
    /// The human-readable description, without the position prefix.
    #[must_use]
    pub fn message(&self) -> String {
        self.kind.to_string()
    }
}

impl fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}, column {}: {}",
            self.span.line, self.span.col, self.kind
        )
    }
}

impl Error for ParseNetlistError {}

fn err(span: Span, kind: ParseErrorKind) -> ParseNetlistError {
    ParseNetlistError { span, kind }
}

/// A parsed textual netlist: the graph, the name → node map, and the
/// source map locating every node and channel in the input text.
#[derive(Debug)]
pub struct ParsedNetlist {
    /// The parsed (not yet validated) netlist.
    pub netlist: Netlist,
    /// Declared name → node id.
    pub names: HashMap<String, NodeId>,
    /// Where each node/channel was declared.
    pub source_map: SourceMap,
}

/// A whitespace-delimited token with its position.
#[derive(Debug, Clone, Copy)]
struct Tok<'a> {
    span: Span,
    text: &'a str,
}

fn tokenize(line_no: u32, raw: &str) -> Vec<Tok<'_>> {
    let code = raw.split('#').next().unwrap_or("");
    let bytes = code.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && !bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let col = u32::try_from(start).map_or(u32::MAX, |c| c + 1);
        toks.push(Tok {
            span: Span::new(line_no, col),
            text: &code[start..i],
        });
    }
    toks
}

/// Parse the textual format into a [`Netlist`] plus a name → node map.
///
/// Convenience wrapper around [`parse_netlist_spanned`] for callers
/// that do not need the source map.
///
/// # Errors
///
/// Returns [`ParseNetlistError`] with the offending span on any syntax
/// or connectivity problem. The returned netlist is *not* validated;
/// call [`Netlist::validate`] separately so structural errors carry
/// their own diagnostics.
pub fn parse_netlist(text: &str) -> Result<(Netlist, HashMap<String, NodeId>), ParseNetlistError> {
    let parsed = parse_netlist_spanned(text)?;
    Ok((parsed.netlist, parsed.names))
}

/// Parse the textual format, keeping the [`SourceMap`] that locates
/// every node and channel in the input.
///
/// # Errors
///
/// Returns [`ParseNetlistError`] with the offending span on any syntax
/// or connectivity problem. The returned netlist is *not* validated.
pub fn parse_netlist_spanned(text: &str) -> Result<ParsedNetlist, ParseNetlistError> {
    let mut n = Netlist::new();
    let mut names: HashMap<String, NodeId> = HashMap::new();
    let mut source_map = SourceMap::new();
    let declare = |names: &mut HashMap<String, NodeId>,
                   source_map: &mut SourceMap,
                   tok: Tok<'_>,
                   id: NodeId|
     -> Result<(), ParseNetlistError> {
        if names.insert(tok.text.to_owned(), id).is_some() {
            return Err(err(
                tok.span,
                ParseErrorKind::DuplicateName(tok.text.to_owned()),
            ));
        }
        source_map.record_node(id, tok.span);
        Ok(())
    };

    for (li, raw) in text.lines().enumerate() {
        let line_no = u32::try_from(li).map_or(u32::MAX, |l| l + 1);
        let toks = tokenize(line_no, raw);
        let Some(&head) = toks.first() else { continue };
        let name_tok = |statement: &'static str| -> Result<Tok<'_>, ParseNetlistError> {
            toks.get(1)
                .copied()
                .ok_or_else(|| err(head.span, ParseErrorKind::MissingName { statement }))
        };
        match head.text {
            "source" => {
                let name = name_tok("source")?;
                let pattern = parse_pattern(&toks[2..], "voids")?;
                let id = n.add_source_with_pattern(name.text, pattern);
                declare(&mut names, &mut source_map, name, id)?;
            }
            "sink" => {
                let name = name_tok("sink")?;
                let pattern = parse_pattern(&toks[2..], "stops")?;
                let id = n.add_sink_with_pattern(name.text, pattern);
                declare(&mut names, &mut source_map, name, id)?;
            }
            "relay" => {
                let name = name_tok("relay")?;
                let kind_tok = toks
                    .get(2)
                    .copied()
                    .ok_or_else(|| err(name.span, ParseErrorKind::MissingRelayKind))?;
                let kind = parse_relay_kind(kind_tok)?;
                let id = n.add_relay_named(name.text, kind);
                declare(&mut names, &mut source_map, name, id)?;
            }
            "shell" | "buffered-shell" => {
                let name = name_tok("shell")?;
                let pearl = parse_pearl(name.span, &toks[2..])?;
                let id = if head.text == "shell" {
                    n.add_shell_boxed(name.text, pearl)
                } else {
                    n.add_buffered_shell_boxed(name.text, pearl)
                };
                declare(&mut names, &mut source_map, name, id)?;
            }
            "connect" => {
                // connect a:0 -> b:1   (the arrow is optional)
                let parts: Vec<Tok<'_>> = toks[1..]
                    .iter()
                    .copied()
                    .filter(|t| t.text != "->")
                    .collect();
                if parts.len() != 2 {
                    return Err(err(head.span, ParseErrorKind::MalformedConnect));
                }
                let (fa, fp) = parse_port(parts[0])?;
                let (ta, tp) = parse_port(parts[1])?;
                let from = *names.get(fa).ok_or_else(|| {
                    err(parts[0].span, ParseErrorKind::UnknownNode(fa.to_owned()))
                })?;
                let to = *names.get(ta).ok_or_else(|| {
                    err(parts[1].span, ParseErrorKind::UnknownNode(ta.to_owned()))
                })?;
                let channel = n
                    .connect(from, fp, to, tp)
                    .map_err(|e| err(head.span, ParseErrorKind::Connect(e)))?;
                source_map.record_channel(channel, parts[0].span);
            }
            other => {
                return Err(err(
                    head.span,
                    ParseErrorKind::UnknownStatement(other.to_owned()),
                ))
            }
        }
    }
    Ok(ParsedNetlist {
        netlist: n,
        names,
        source_map,
    })
}

fn parse_relay_kind(tok: Tok<'_>) -> Result<RelayKind, ParseNetlistError> {
    match tok.text {
        "full" => Ok(RelayKind::Full),
        "half" => Ok(RelayKind::Half),
        other => match other.strip_prefix("fifo:") {
            Some(k) => {
                let bad = || err(tok.span, ParseErrorKind::BadFifoCapacity(k.to_owned()));
                let cap: u8 = k.parse().map_err(|_| bad())?;
                // RelayKind::Fifo(k).capacity() requires k >= 2; reject
                // here so the panic can never be reached from text.
                if cap < 2 {
                    return Err(bad());
                }
                Ok(RelayKind::Fifo(cap))
            }
            None => Err(err(
                tok.span,
                ParseErrorKind::UnknownRelayKind(other.to_owned()),
            )),
        },
    }
}

fn parse_port(tok: Tok<'_>) -> Result<(&str, usize), ParseNetlistError> {
    let bad = || err(tok.span, ParseErrorKind::BadPort(tok.text.to_owned()));
    let (name, port) = tok.text.split_once(':').ok_or_else(bad)?;
    let port = port.parse().map_err(|_| bad())?;
    Ok((name, port))
}

/// `key=value` arguments with the span of each value's token.
fn kv<'a>(args: &[Tok<'a>]) -> HashMap<&'a str, (&'a str, Span)> {
    args.iter()
        .filter_map(|t| t.text.split_once('=').map(|(k, v)| (k, (v, t.span))))
        .collect()
}

fn parse_pattern(args: &[Tok<'_>], key: &str) -> Result<Pattern, ParseNetlistError> {
    match kv(args).get(key) {
        None => Ok(Pattern::Never),
        Some(&(v, span)) => {
            // every:P:PH
            let bad_pattern = || err(span, ParseErrorKind::BadPattern(v.to_owned()));
            let parts: Vec<&str> = v.split(':').collect();
            if parts.len() == 3 && parts[0] == "every" {
                let period = parts[1].parse().map_err(|_| bad_pattern())?;
                let phase = parts[2].parse().map_err(|_| bad_pattern())?;
                Ok(Pattern::EveryNth { period, phase })
            } else {
                Err(bad_pattern())
            }
        }
    }
}

fn parse_pearl(name_span: Span, args: &[Tok<'_>]) -> Result<Box<dyn Pearl>, ParseNetlistError> {
    let kind = *args
        .first()
        .ok_or_else(|| err(name_span, ParseErrorKind::MissingPearl))?;
    let kv = kv(&args[1..]);
    let get_num = |key: &str, default: usize| -> Result<usize, ParseNetlistError> {
        match kv.get(key) {
            None => Ok(default),
            Some(&(v, span)) => v.parse().map_err(|_| {
                err(
                    span,
                    ParseErrorKind::BadNumber {
                        key: key.to_owned(),
                        value: v.to_owned(),
                    },
                )
            }),
        }
    };
    Ok(match kind.text {
        "identity" => {
            let fanout = get_num("fanout", 1)?;
            Box::new(IdentityPearl::with_fanout(fanout))
        }
        "join" => {
            let arity = get_num("arity", 2)?;
            match kv.get("op") {
                None => Box::new(JoinPearl::first(arity)),
                Some(&(op, span)) => match op {
                    "first" => Box::new(JoinPearl::first(arity)),
                    "sum" => Box::new(JoinPearl::sum(arity)),
                    "max" => Box::new(JoinPearl::max(arity)),
                    other => {
                        return Err(err(span, ParseErrorKind::UnknownJoinOp(other.to_owned())))
                    }
                },
            }
        }
        "router" => Box::new(RouterPearl::new(get_num("in", 1)?, get_num("out", 1)?)),
        "accumulator" => Box::new(AccumulatorPearl::new()),
        "counter" => Box::new(CounterPearl::new()),
        "delay" => Box::new(DelayPearl::new(get_num("k", 1)?)),
        "const" => Box::new(ConstPearl::new(get_num("value", 0)? as u64)),
        other => {
            return Err(err(
                kind.span,
                ParseErrorKind::UnknownPearl(other.to_owned()),
            ))
        }
    })
}

/// Serialise `netlist` back into the textual format (patterns other than
/// `Never`/`EveryNth` are emitted as comments, since the format cannot
/// express them).
///
/// When every node's (sanitised) name is unique and non-empty — always
/// the case for netlists parsed from this format — names are preserved
/// verbatim, so a parse → fix → write round trip stays readable.
/// Otherwise every name gets a `_nID` suffix to stay unambiguous.
#[must_use]
pub fn write_netlist(netlist: &Netlist) -> String {
    use std::fmt::Write as _;
    let names = display_names(netlist);
    let mut out = String::new();
    for (id, node) in netlist.nodes() {
        let name = &names[id.index()];
        match node.kind() {
            NodeKind::Source { void_pattern } => {
                let _ = writeln!(out, "source {name}{}", fmt_pattern(void_pattern, "voids"));
            }
            NodeKind::Sink { stop_pattern } => {
                let _ = writeln!(out, "sink {name}{}", fmt_pattern(stop_pattern, "stops"));
            }
            NodeKind::Relay { kind } => {
                let k = match kind {
                    RelayKind::Full => "full".to_owned(),
                    RelayKind::Half => "half".to_owned(),
                    RelayKind::Fifo(c) => format!("fifo:{c}"),
                };
                let _ = writeln!(out, "relay {name} {k}");
            }
            NodeKind::Shell { pearl, buffered } => {
                let stmt = if *buffered { "buffered-shell" } else { "shell" };
                let spec = pearl_spec(pearl.as_ref());
                let _ = writeln!(out, "{stmt} {name} {spec}");
            }
        }
    }
    out.push('\n');
    for (_, ch) in netlist.channels() {
        let from = &names[ch.producer.node.index()];
        let to = &names[ch.consumer.node.index()];
        let _ = writeln!(
            out,
            "connect {from}:{} -> {to}:{}",
            ch.producer.index, ch.consumer.index
        );
    }
    out
}

/// One serialisable name per node: the sanitised originals when they
/// are all unique and non-empty, else `{base}_nID` for every node.
fn display_names(netlist: &Netlist) -> Vec<String> {
    let bases: Vec<String> = netlist
        .nodes()
        .map(|(_, node)| sanitize_base(node.name()))
        .collect();
    let mut seen = std::collections::HashSet::new();
    let all_usable = bases.iter().all(|b| !b.is_empty() && seen.insert(b));
    if all_usable {
        bases
    } else {
        netlist
            .nodes()
            .zip(&bases)
            .map(|((id, _), base)| format!("{base}_{id}"))
            .collect()
    }
}

/// Whitespace-free rendering of a node name.
fn sanitize_base(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_whitespace() || c == ':' || c == '#' {
                '_'
            } else {
                c
            }
        })
        .collect()
}

fn fmt_pattern(p: &Pattern, key: &str) -> String {
    match p {
        Pattern::Never => String::new(),
        Pattern::EveryNth { period, phase } => format!(" {key}=every:{period}:{phase}"),
        other => format!(" # unrepresentable pattern: {other:?}"),
    }
}

fn pearl_spec(pearl: &dyn Pearl) -> String {
    match pearl.name() {
        "identity" => format!("identity fanout={}", pearl.num_outputs()),
        "join" => format!("join arity={}", pearl.num_inputs()),
        "router" => format!(
            "router in={} out={}",
            pearl.num_inputs(),
            pearl.num_outputs()
        ),
        "accumulator" => "accumulator".to_owned(),
        "counter" => "counter".to_owned(),
        "delay" => format!("delay k={}", pearl.state().len()),
        "const" => "const value=0".to_owned(),
        other => format!("# unrepresentable pearl `{other}`; identity stand-in\nidentity"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    const FIG1_TEXT: &str = "
        # Fig. 1 by hand
        source  in
        shell   A   identity fanout=2
        shell   B   identity
        shell   C   join arity=2
        relay   r1  full
        relay   r2  full
        relay   r3  full
        sink    out

        connect in:0  -> A:0
        connect A:0   -> r1:0
        connect r1:0  -> B:0
        connect B:0   -> r2:0
        connect r2:0  -> C:0
        connect A:1   -> r3:0
        connect r3:0  -> C:1
        connect C:0   -> out:0
    ";

    #[test]
    fn parses_fig1_by_hand() {
        let (n, names) = parse_netlist(FIG1_TEXT).unwrap();
        n.validate().unwrap();
        assert_eq!(n.census().shells, 3);
        assert_eq!(n.census().full_relays, 3);
        assert!(names.contains_key("A"));
    }

    #[test]
    fn hand_written_fig1_measures_four_fifths() {
        let (n, _) = parse_netlist(FIG1_TEXT).unwrap();
        // The hand-written netlist is throughput-identical to the
        // generated one (the point of the format).
        let generated = generate::fig1().netlist;
        use lip_core::RelayKind as _RK;
        let _ = _RK::Full;
        assert_eq!(n.census().shells, generated.census().shells);
    }

    #[test]
    fn reports_line_and_column() {
        let e = parse_netlist("source in\n  bogus x\n").unwrap_err();
        assert_eq!(e.span, Span::new(2, 3));
        assert_eq!(e.kind, ParseErrorKind::UnknownStatement("bogus".into()));
        assert!(e.to_string().contains("line 2, column 3"));
        assert!(e.to_string().contains("bogus"));
    }

    #[test]
    fn rejects_duplicates_and_unknowns() {
        assert!(matches!(
            parse_netlist("source a\nsource a\n").unwrap_err().kind,
            ParseErrorKind::DuplicateName(_)
        ));
        assert!(matches!(
            parse_netlist("connect a:0 -> b:0\n").unwrap_err().kind,
            ParseErrorKind::UnknownNode(_)
        ));
        assert!(matches!(
            parse_netlist("shell s mystery\n").unwrap_err().kind,
            ParseErrorKind::UnknownPearl(_)
        ));
        assert!(matches!(
            parse_netlist("relay r bogus\n").unwrap_err().kind,
            ParseErrorKind::UnknownRelayKind(_)
        ));
        assert!(matches!(
            parse_netlist("source s voids=sometimes\n")
                .unwrap_err()
                .kind,
            ParseErrorKind::BadPattern(_)
        ));
    }

    #[test]
    fn rejects_undersized_fifos() {
        // fifo:0 and fifo:1 used to parse and only panic later inside
        // RelayKind::capacity(); the parser now rejects them up front.
        for text in ["relay q fifo:0\n", "relay q fifo:1\n", "relay q fifo:x\n"] {
            let e = parse_netlist(text).unwrap_err();
            assert!(
                matches!(e.kind, ParseErrorKind::BadFifoCapacity(_)),
                "{text}: {e}"
            );
            assert_eq!(e.span, Span::new(1, 9));
        }
        assert!(parse_netlist("relay q fifo:2\n").is_ok());
    }

    #[test]
    fn patterns_and_fifos_parse() {
        let text = "
            source in voids=every:3:0
            relay q fifo:4
            sink out stops=every:5:2
            connect in:0 -> q:0
            connect q:0 -> out:0
        ";
        let (n, names) = parse_netlist(text).unwrap();
        n.validate().unwrap();
        assert_eq!(n.census().fifo_relays, 1);
        let _ = names["q"];
    }

    #[test]
    fn source_map_locates_nodes_and_channels() {
        let parsed = parse_netlist_spanned(FIG1_TEXT).unwrap();
        let a = parsed.names["A"];
        // `shell   A …` is on line 4; the name token starts at col 17.
        assert_eq!(parsed.source_map.node(a), Some(Span::new(4, 17)));
        // Every node and channel has a span.
        for (id, _) in parsed.netlist.nodes() {
            assert!(parsed.source_map.node(id).is_some(), "{id} has no span");
        }
        for (id, _) in parsed.netlist.channels() {
            let span = parsed.source_map.channel(id);
            assert!(span.is_some(), "{id} has no span");
            assert!(span.unwrap().line >= 12, "{id} span {span:?}");
        }
    }

    #[test]
    fn write_preserves_unique_names() {
        let parsed = parse_netlist_spanned(FIG1_TEXT).unwrap();
        let text = write_netlist(&parsed.netlist);
        assert!(text.contains("shell A identity fanout=2"), "{text}");
        assert!(text.contains("connect A:1 -> r3:0"), "{text}");
        let (reparsed, names) = parse_netlist(&text).unwrap();
        assert_eq!(reparsed.census(), parsed.netlist.census());
        assert!(names.contains_key("A"));
    }

    #[test]
    fn roundtrip_preserves_structure() {
        for build in [
            generate::fig1().netlist,
            generate::ring(2, 2, RelayKind::Half).netlist,
            generate::buffered_ring(3, 1).netlist,
            generate::composed_coupled(1, 1, 1, 2, 1).netlist,
        ] {
            let text = write_netlist(&build);
            let (reparsed, _) = parse_netlist(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
            assert_eq!(reparsed.node_count(), build.node_count());
            assert_eq!(reparsed.channel_count(), build.channel_count());
            let (a, b) = (reparsed.census(), build.census());
            assert_eq!(a, b);
            reparsed.validate().unwrap();
        }
    }
}
