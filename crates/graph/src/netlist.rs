//! The latency-insensitive netlist: nodes (sources, shells, relay
//! stations, sinks) connected by point-to-point channels.
//!
//! Every channel has exactly one producer port and one consumer port; each
//! port carries the protocol triple `data`/`valid` forward and `stop`
//! backward. Fanout is expressed as a shell output *per consumer* (e.g.
//! [`IdentityPearl::with_fanout`](lip_core::pearl::IdentityPearl::with_fanout)),
//! because each copy of a datum needs its own valid/stop pair to be
//! consumable independently.

use std::fmt;

use lip_core::pearl::Pearl;
use lip_core::{Pattern, ProtocolVariant, RelayKind};

use crate::error::NetlistError;

/// Handle to a node of a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Dense index of this node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Handle to a channel of a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub(crate) u32);

impl ChannelId {
    /// Dense index of this channel.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// What a node is.
#[derive(Debug, Clone)]
pub enum NodeKind {
    /// Primary input, emitting sequence-numbered tokens with an optional
    /// void pattern.
    Source {
        /// Cycles on which the source emits a void instead of data.
        void_pattern: Pattern,
    },
    /// Primary output, with an optional back-pressure pattern.
    Sink {
        /// Cycles on which the sink refuses the offered token.
        stop_pattern: Pattern,
    },
    /// A shell-wrapped pearl.
    Shell {
        /// The functional module.
        pearl: Box<dyn Pearl>,
        /// `true` for the buffered shell of earlier proposals (inputs
        /// registered, stops saved inside the shell); `false` for the
        /// paper's simplified shell.
        buffered: bool,
    },
    /// A relay station of the given kind.
    Relay {
        /// Full (two registers) or half (one register).
        kind: RelayKind,
    },
}

impl NodeKind {
    /// Number of input ports.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        match self {
            NodeKind::Source { .. } => 0,
            NodeKind::Sink { .. } | NodeKind::Relay { .. } => 1,
            NodeKind::Shell { pearl, .. } => pearl.num_inputs(),
        }
    }

    /// Number of output ports.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        match self {
            NodeKind::Sink { .. } => 0,
            NodeKind::Source { .. } | NodeKind::Relay { .. } => 1,
            NodeKind::Shell { pearl, .. } => pearl.num_outputs(),
        }
    }

    /// `true` for relay stations of either kind.
    #[must_use]
    pub fn is_relay(&self) -> bool {
        matches!(self, NodeKind::Relay { .. })
    }

    /// `true` for shells of either flavour.
    #[must_use]
    pub fn is_shell(&self) -> bool {
        matches!(self, NodeKind::Shell { .. })
    }

    /// `true` for buffered shells (registered inputs: the stop path is
    /// cut inside the shell).
    #[must_use]
    pub fn is_buffered_shell(&self) -> bool {
        matches!(self, NodeKind::Shell { buffered: true, .. })
    }

    /// `true` for the paper's simplified shells (stops traverse
    /// combinationally).
    #[must_use]
    pub fn is_simple_shell(&self) -> bool {
        matches!(
            self,
            NodeKind::Shell {
                buffered: false,
                ..
            }
        )
    }

    /// Forward (data) latency contributed by the node when flowing:
    /// shells and full relay stations register data (1); half stations
    /// and endpoints are transparent (0 — source registers count as the
    /// producer's).
    #[must_use]
    pub fn forward_latency(&self) -> u64 {
        match self {
            NodeKind::Shell { .. } => 1,
            NodeKind::Relay { kind } => kind.forward_latency(),
            NodeKind::Source { .. } | NodeKind::Sink { .. } => 0,
        }
    }
}

/// A node: kind plus a display name.
#[derive(Debug, Clone)]
pub struct Node {
    pub(crate) name: String,
    pub(crate) kind: NodeKind,
}

impl Node {
    /// Display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node's kind.
    #[must_use]
    pub fn kind(&self) -> &NodeKind {
        &self.kind
    }
}

/// One endpoint of a channel: a node and a port index on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Port {
    /// The node.
    pub node: NodeId,
    /// Port index within the node's input or output ports.
    pub index: usize,
}

/// A point-to-point channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Channel {
    /// Producing output port.
    pub producer: Port,
    /// Consuming input port.
    pub consumer: Port,
}

/// A latency-insensitive netlist.
///
/// # Example
///
/// ```
/// use lip_graph::Netlist;
/// use lip_core::pearl::IdentityPearl;
/// use lip_core::RelayKind;
///
/// # fn main() -> Result<(), lip_graph::NetlistError> {
/// let mut n = Netlist::new();
/// let src = n.add_source("in");
/// let rs = n.add_relay(RelayKind::Full);
/// let a = n.add_shell("A", IdentityPearl::new());
/// let out = n.add_sink("out");
/// n.connect(src, 0, rs, 0)?;
/// n.connect(rs, 0, a, 0)?;
/// n.connect(a, 0, out, 0)?;
/// n.validate()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    nodes: Vec<Node>,
    channels: Vec<Channel>,
    /// Per node: channel driven by each output port.
    out_ports: Vec<Vec<Option<ChannelId>>>,
    /// Per node: channel feeding each input port.
    in_ports: Vec<Vec<Option<ChannelId>>>,
    variant: ProtocolVariant,
}

impl Netlist {
    /// An empty netlist using the paper's refined protocol variant.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty netlist under an explicit protocol variant.
    #[must_use]
    pub fn with_variant(variant: ProtocolVariant) -> Self {
        Netlist {
            variant,
            ..Self::default()
        }
    }

    /// The protocol variant shells of this netlist will follow.
    #[must_use]
    pub fn variant(&self) -> ProtocolVariant {
        self.variant
    }

    /// Switch the protocol variant (used by the variant-comparison
    /// experiment to re-elaborate the same topology both ways).
    pub fn set_variant(&mut self, variant: ProtocolVariant) {
        self.variant = variant;
    }

    fn add_node(&mut self, name: String, kind: NodeKind) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("too many nodes"));
        self.out_ports.push(vec![None; kind.num_outputs()]);
        self.in_ports.push(vec![None; kind.num_inputs()]);
        self.nodes.push(Node { name, kind });
        id
    }

    /// Add a free-flowing primary input.
    pub fn add_source(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(
            name.into(),
            NodeKind::Source {
                void_pattern: Pattern::Never,
            },
        )
    }

    /// Add a primary input that injects voids where `void_pattern`
    /// asserts.
    pub fn add_source_with_pattern(
        &mut self,
        name: impl Into<String>,
        void_pattern: Pattern,
    ) -> NodeId {
        self.add_node(name.into(), NodeKind::Source { void_pattern })
    }

    /// Add a free-flowing primary output.
    pub fn add_sink(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(
            name.into(),
            NodeKind::Sink {
                stop_pattern: Pattern::Never,
            },
        )
    }

    /// Add a primary output that stops where `stop_pattern` asserts.
    pub fn add_sink_with_pattern(
        &mut self,
        name: impl Into<String>,
        stop_pattern: Pattern,
    ) -> NodeId {
        self.add_node(name.into(), NodeKind::Sink { stop_pattern })
    }

    /// Replace the void pattern of the source at `node`; returns `false`
    /// (and changes nothing) if `node` is not a source.
    ///
    /// Patterns are environment, not structure — swapping one never
    /// invalidates a validated netlist, so parameter sweeps can reuse a
    /// single topology.
    pub fn set_source_pattern(&mut self, node: NodeId, pattern: Pattern) -> bool {
        match &mut self.nodes[node.index()].kind {
            NodeKind::Source { void_pattern } => {
                *void_pattern = pattern;
                true
            }
            _ => false,
        }
    }

    /// Replace the stop pattern of the sink at `node`; returns `false`
    /// (and changes nothing) if `node` is not a sink.
    pub fn set_sink_pattern(&mut self, node: NodeId, pattern: Pattern) -> bool {
        match &mut self.nodes[node.index()].kind {
            NodeKind::Sink { stop_pattern } => {
                *stop_pattern = pattern;
                true
            }
            _ => false,
        }
    }

    /// Add a shell wrapping `pearl`.
    pub fn add_shell(&mut self, name: impl Into<String>, pearl: impl Pearl + 'static) -> NodeId {
        self.add_node(
            name.into(),
            NodeKind::Shell {
                pearl: Box::new(pearl),
                buffered: false,
            },
        )
    }

    /// Add a shell wrapping an already-boxed pearl.
    pub fn add_shell_boxed(&mut self, name: impl Into<String>, pearl: Box<dyn Pearl>) -> NodeId {
        self.add_node(
            name.into(),
            NodeKind::Shell {
                pearl,
                buffered: false,
            },
        )
    }

    /// Add a *buffered* shell (registered inputs, as in the proposals
    /// the paper simplifies): no relay station is required on its input
    /// channels, at the cost of one register per input.
    pub fn add_buffered_shell(
        &mut self,
        name: impl Into<String>,
        pearl: impl Pearl + 'static,
    ) -> NodeId {
        self.add_node(
            name.into(),
            NodeKind::Shell {
                pearl: Box::new(pearl),
                buffered: true,
            },
        )
    }

    /// Add a buffered shell wrapping an already-boxed pearl.
    pub fn add_buffered_shell_boxed(
        &mut self,
        name: impl Into<String>,
        pearl: Box<dyn Pearl>,
    ) -> NodeId {
        self.add_node(
            name.into(),
            NodeKind::Shell {
                pearl,
                buffered: true,
            },
        )
    }

    /// Add a relay station with an automatic name.
    pub fn add_relay(&mut self, kind: RelayKind) -> NodeId {
        let name = format!("{}_rs{}", kind, self.nodes.len());
        self.add_node(name, NodeKind::Relay { kind })
    }

    /// Add a named relay station.
    pub fn add_relay_named(&mut self, name: impl Into<String>, kind: RelayKind) -> NodeId {
        self.add_node(name.into(), NodeKind::Relay { kind })
    }

    fn check_port(&self, node: NodeId, port: usize, output: bool) -> Result<(), NetlistError> {
        let arity = if output {
            self.nodes[node.index()].kind.num_outputs()
        } else {
            self.nodes[node.index()].kind.num_inputs()
        };
        if port >= arity {
            return Err(NetlistError::PortOutOfRange {
                node,
                port,
                arity,
                output,
            });
        }
        let busy = if output {
            self.out_ports[node.index()][port].is_some()
        } else {
            self.in_ports[node.index()][port].is_some()
        };
        if busy {
            return Err(NetlistError::PortAlreadyConnected { node, port, output });
        }
        Ok(())
    }

    /// Connect output port `from_port` of `from` to input port `to_port`
    /// of `to`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError`] if either port is out of range or already
    /// connected.
    pub fn connect(
        &mut self,
        from: NodeId,
        from_port: usize,
        to: NodeId,
        to_port: usize,
    ) -> Result<ChannelId, NetlistError> {
        self.check_port(from, from_port, true)?;
        self.check_port(to, to_port, false)?;
        let id = ChannelId(u32::try_from(self.channels.len()).expect("too many channels"));
        self.channels.push(Channel {
            producer: Port {
                node: from,
                index: from_port,
            },
            consumer: Port {
                node: to,
                index: to_port,
            },
        });
        self.out_ports[from.index()][from_port] = Some(id);
        self.in_ports[to.index()][to_port] = Some(id);
        Ok(id)
    }

    /// Connect a linear chain through port 0 of each node:
    /// `nodes[0] -> nodes[1] -> …`.
    ///
    /// # Errors
    ///
    /// As [`connect`](Self::connect).
    pub fn chain(&mut self, nodes: &[NodeId]) -> Result<Vec<ChannelId>, NetlistError> {
        let mut out = Vec::new();
        for pair in nodes.windows(2) {
            out.push(self.connect(pair[0], 0, pair[1], 0)?);
        }
        Ok(out)
    }

    /// Connect `from`/`from_port` to `to`/`to_port` through `n` freshly
    /// created relay stations of `kind`.
    ///
    /// # Errors
    ///
    /// As [`connect`](Self::connect).
    pub fn connect_via_relays(
        &mut self,
        from: NodeId,
        from_port: usize,
        to: NodeId,
        to_port: usize,
        n: usize,
        kind: RelayKind,
    ) -> Result<Vec<NodeId>, NetlistError> {
        let mut relays = Vec::with_capacity(n);
        let mut prev = (from, from_port);
        for _ in 0..n {
            let rs = self.add_relay(kind);
            self.connect(prev.0, prev.1, rs, 0)?;
            relays.push(rs);
            prev = (rs, 0);
        }
        self.connect(prev.0, prev.1, to, to_port)?;
        Ok(relays)
    }

    /// Split `channel` by inserting a relay station of `kind` on it,
    /// returning the new node. Used by path equalization and deadlock
    /// cures ("adding/substituting few relay stations").
    ///
    /// # Panics
    ///
    /// Panics if `channel` is not a channel of this netlist.
    pub fn insert_relay_on_channel(&mut self, channel: ChannelId, kind: RelayKind) -> NodeId {
        let ch = self.channels[channel.index()];
        let rs = self.add_relay(kind);
        // Rewire: producer -> rs (reusing the existing channel record),
        // rs -> consumer (new channel).
        self.channels[channel.index()].consumer = Port { node: rs, index: 0 };
        self.in_ports[rs.index()][0] = Some(channel);
        let new_id = ChannelId(u32::try_from(self.channels.len()).expect("too many channels"));
        self.channels.push(Channel {
            producer: Port { node: rs, index: 0 },
            consumer: ch.consumer,
        });
        self.out_ports[rs.index()][0] = Some(new_id);
        self.in_ports[ch.consumer.node.index()][ch.consumer.index] = Some(new_id);
        rs
    }

    /// Replace the kind of relay-station node `node` (used by deadlock
    /// cures that substitute half stations with full ones).
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a relay station.
    pub fn set_relay_kind(&mut self, node: NodeId, kind: RelayKind) {
        match &mut self.nodes[node.index()].kind {
            NodeKind::Relay { kind: k } => *k = kind,
            other => panic!("node {node} is not a relay station (found {other:?})"),
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of channels.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// The node behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is from another netlist.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The channel behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is from another netlist.
    #[must_use]
    pub fn channel(&self, id: ChannelId) -> Channel {
        self.channels[id.index()]
    }

    /// Iterate `(id, node)` in insertion order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(u32::try_from(i).expect("node index")), n))
    }

    /// Iterate `(id, channel)` in insertion order.
    pub fn channels(&self) -> impl Iterator<Item = (ChannelId, Channel)> + '_ {
        self.channels
            .iter()
            .enumerate()
            .map(|(i, c)| (ChannelId(u32::try_from(i).expect("channel index")), *c))
    }

    /// Channel driven by output port `port` of `node`, if connected.
    #[must_use]
    pub fn out_channel(&self, node: NodeId, port: usize) -> Option<ChannelId> {
        self.out_ports[node.index()].get(port).copied().flatten()
    }

    /// Channel feeding input port `port` of `node`, if connected.
    #[must_use]
    pub fn in_channel(&self, node: NodeId, port: usize) -> Option<ChannelId> {
        self.in_ports[node.index()].get(port).copied().flatten()
    }

    /// Successor nodes of `node` (one per connected output port).
    #[must_use]
    pub fn successors(&self, node: NodeId) -> Vec<NodeId> {
        self.out_ports[node.index()]
            .iter()
            .flatten()
            .map(|ch| self.channels[ch.index()].consumer.node)
            .collect()
    }

    /// Predecessor nodes of `node` (one per connected input port).
    #[must_use]
    pub fn predecessors(&self, node: NodeId) -> Vec<NodeId> {
        self.in_ports[node.index()]
            .iter()
            .flatten()
            .map(|ch| self.channels[ch.index()].producer.node)
            .collect()
    }

    /// All node ids of a kind selected by `pred`.
    fn nodes_where(&self, pred: impl Fn(&NodeKind) -> bool) -> Vec<NodeId> {
        self.nodes()
            .filter(|(_, n)| pred(&n.kind))
            .map(|(id, _)| id)
            .collect()
    }

    /// All sources.
    #[must_use]
    pub fn sources(&self) -> Vec<NodeId> {
        self.nodes_where(|k| matches!(k, NodeKind::Source { .. }))
    }

    /// All sinks.
    #[must_use]
    pub fn sinks(&self) -> Vec<NodeId> {
        self.nodes_where(|k| matches!(k, NodeKind::Sink { .. }))
    }

    /// All shells.
    #[must_use]
    pub fn shells(&self) -> Vec<NodeId> {
        self.nodes_where(NodeKind::is_shell)
    }

    /// All relay stations.
    #[must_use]
    pub fn relays(&self) -> Vec<NodeId> {
        self.nodes_where(NodeKind::is_relay)
    }

    /// Channels connecting a shell output directly to a shell input —
    /// legal but flagged, because the simplified shell stores no stops;
    /// the paper inserts at least a half relay station on each.
    #[must_use]
    pub fn shell_to_shell_channels(&self) -> Vec<ChannelId> {
        self.channels()
            .filter(|(_, c)| {
                self.nodes[c.producer.node.index()].kind.is_shell()
                    && self.nodes[c.consumer.node.index()].kind.is_simple_shell()
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// Validate connectivity and the combinational-loop rules.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::UnconnectedPort`] — some port is dangling.
    /// * [`NetlistError::StopLoop`] — a cycle contains no relay station,
    ///   so its backward stop path never meets a register (the
    ///   minimum-memory theorem).
    /// * [`NetlistError::DataLoop`] — a cycle contains neither a shell
    ///   nor a full relay station, so its forward data path is purely
    ///   combinational.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (id, node) in self.nodes() {
            for port in 0..node.kind.num_outputs() {
                if self.out_channel(id, port).is_none() {
                    return Err(NetlistError::UnconnectedPort {
                        node: id,
                        port,
                        output: true,
                    });
                }
            }
            for port in 0..node.kind.num_inputs() {
                if self.in_channel(id, port).is_none() {
                    return Err(NetlistError::UnconnectedPort {
                        node: id,
                        port,
                        output: false,
                    });
                }
            }
        }
        // Combinational loop rules: in the subgraph where "stop-cutting"
        // nodes (relays) are removed, any remaining cycle is a stop loop;
        // likewise removing "data-cutting" nodes (shells + full relays)
        // must leave the graph acyclic.
        if let Some(cycle) = self.cycle_avoiding(|k| k.is_relay() || k.is_buffered_shell()) {
            return Err(NetlistError::StopLoop { cycle });
        }
        if let Some(cycle) = self.cycle_avoiding(|k| {
            k.is_shell()
                || matches!(
                    k,
                    NodeKind::Relay {
                        kind: RelayKind::Full | RelayKind::Fifo(_)
                    }
                )
        }) {
            return Err(NetlistError::DataLoop { cycle });
        }
        Ok(())
    }

    /// Find a directed cycle in the subgraph of nodes **not** satisfying
    /// `cut` (cut nodes break the path). Returns the cycle's nodes.
    fn cycle_avoiding(&self, cut: impl Fn(&NodeKind) -> bool) -> Option<Vec<NodeId>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let n = self.nodes.len();
        let mut mark = vec![Mark::White; n];
        let mut stack: Vec<NodeId> = Vec::new();

        // Iterative DFS with an explicit path stack.
        for start in 0..n {
            let start_id = NodeId(u32::try_from(start).expect("node index"));
            if mark[start] != Mark::White || cut(&self.nodes[start].kind) {
                continue;
            }
            let mut work: Vec<(NodeId, usize)> = vec![(start_id, 0)];
            mark[start] = Mark::Grey;
            stack.push(start_id);
            while let Some(&(node, next)) = work.last() {
                let succs = self.successors(node);
                if next < succs.len() {
                    work.last_mut().expect("non-empty").1 += 1;
                    let s = succs[next];
                    if cut(&self.nodes[s.index()].kind) {
                        continue;
                    }
                    match mark[s.index()] {
                        Mark::White => {
                            mark[s.index()] = Mark::Grey;
                            stack.push(s);
                            work.push((s, 0));
                        }
                        Mark::Grey => {
                            // Found a cycle: slice the path stack.
                            let pos = stack.iter().position(|&x| x == s).expect("grey on stack");
                            return Some(stack[pos..].to_vec());
                        }
                        Mark::Black => {}
                    }
                } else {
                    mark[node.index()] = Mark::Black;
                    stack.pop();
                    work.pop();
                }
            }
        }
        None
    }

    /// The zero-latency reference design: the same netlist with every
    /// relay station removed and its channels short-circuited. This is
    /// the design the latency-insensitive system must be observationally
    /// equal to ("identity of behavior"); see
    /// `lip-verify`'s equivalence checks.
    ///
    /// Returns the reference netlist and a map from old node ids to new
    /// ones (`None` for removed relay stations).
    ///
    /// Note: stripping relays from a loop that has no buffered shells
    /// yields a netlist that fails validation (a combinational stop
    /// loop) — correctly so: the reference semantics of such a loop is
    /// the original *synchronous* design whose shells cut the loop, and
    /// its behaviour is compared per-stream, not elaborated.
    #[must_use]
    pub fn without_relays(&self) -> (Netlist, Vec<Option<NodeId>>) {
        let mut out = Netlist::with_variant(self.variant);
        let mut map: Vec<Option<NodeId>> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            map.push(match &node.kind {
                NodeKind::Relay { .. } => None,
                kind => Some(out.add_node(node.name.clone(), kind.clone())),
            });
        }
        // Re-connect: for every channel leaving a kept node, follow
        // through relay stations to the next kept consumer.
        for ch in &self.channels {
            let Some(new_from) = map[ch.producer.node.index()] else {
                continue;
            };
            let mut cursor = ch.consumer;
            loop {
                match map[cursor.node.index()] {
                    Some(new_to) => {
                        out.connect(new_from, ch.producer.index, new_to, cursor.index)
                            .expect("reference ports are fresh");
                        break;
                    }
                    None => {
                        // A relay station: follow its single output.
                        let next =
                            self.out_ports[cursor.node.index()][0].expect("relay output connected");
                        cursor = self.channels[next.index()].consumer;
                    }
                }
            }
        }
        (out, map)
    }

    /// Render the netlist as a Graphviz `dot` digraph: shells as boxes
    /// (buffered ones double-bordered), relay stations as small
    /// diamonds, endpoints as ellipses.
    ///
    /// ```
    /// # use lip_graph::generate;
    /// let dot = generate::fig1().netlist.to_dot();
    /// assert!(dot.starts_with("digraph lid {"));
    /// ```
    #[must_use]
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph lid {\n  rankdir=LR;\n");
        for (id, node) in self.nodes() {
            let (shape, extra) = match node.kind() {
                NodeKind::Source { .. } | NodeKind::Sink { .. } => ("ellipse", ""),
                NodeKind::Shell { buffered: true, .. } => ("box", ", peripheries=2"),
                NodeKind::Shell { .. } => ("box", ""),
                NodeKind::Relay { .. } => ("diamond", ", height=0.3, width=0.5"),
            };
            let label = match node.kind() {
                NodeKind::Relay { kind } => format!("{kind}"),
                _ => node.name().to_owned(),
            };
            let _ = writeln!(out, "  {id} [label=\"{label}\", shape={shape}{extra}];");
        }
        for (_, ch) in self.channels() {
            let _ = writeln!(out, "  {} -> {};", ch.producer.node, ch.consumer.node);
        }
        out.push_str("}\n");
        out
    }

    /// Count nodes per kind: `(sources, sinks, shells, full_relays,
    /// half_relays)`.
    #[must_use]
    pub fn census(&self) -> NetlistCensus {
        let mut c = NetlistCensus::default();
        for (_, node) in self.nodes() {
            match &node.kind {
                NodeKind::Source { .. } => c.sources += 1,
                NodeKind::Sink { .. } => c.sinks += 1,
                NodeKind::Shell { buffered, .. } => {
                    c.shells += 1;
                    if *buffered {
                        c.buffered_shells += 1;
                    }
                }
                NodeKind::Relay {
                    kind: RelayKind::Full,
                } => c.full_relays += 1,
                NodeKind::Relay {
                    kind: RelayKind::Half,
                } => c.half_relays += 1,
                NodeKind::Relay {
                    kind: RelayKind::Fifo(_),
                } => c.fifo_relays += 1,
            }
        }
        c
    }
}

/// Node counts per kind (see [`Netlist::census`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetlistCensus {
    /// Number of sources.
    pub sources: usize,
    /// Number of sinks.
    pub sinks: usize,
    /// Number of shells (simplified + buffered).
    pub shells: usize,
    /// Number of buffered shells (subset of `shells`).
    pub buffered_shells: usize,
    /// Number of full relay stations.
    pub full_relays: usize,
    /// Number of half relay stations.
    pub half_relays: usize,
    /// Number of sized FIFO stations.
    pub fifo_relays: usize,
}

impl NetlistCensus {
    /// Total relay stations of any kind.
    #[must_use]
    pub fn relays(&self) -> usize {
        self.full_relays + self.half_relays + self.fifo_relays
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.census();
        write!(
            f,
            "Netlist({} nodes, {} channels: {} src, {} sink, {} shell, {} full-rs, {} half-rs, {} fifo-rs)",
            self.node_count(),
            self.channel_count(),
            c.sources,
            c.sinks,
            c.shells,
            c.full_relays,
            c.half_relays,
            c.fifo_relays
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_core::pearl::{IdentityPearl, JoinPearl};

    fn simple_pipeline() -> (Netlist, NodeId, NodeId) {
        let mut n = Netlist::new();
        let src = n.add_source("in");
        let rs = n.add_relay(RelayKind::Full);
        let a = n.add_shell("A", IdentityPearl::new());
        let out = n.add_sink("out");
        n.chain(&[src, rs, a, out]).unwrap();
        (n, src, out)
    }

    #[test]
    fn build_and_validate_pipeline() {
        let (n, ..) = simple_pipeline();
        n.validate().unwrap();
        let c = n.census();
        assert_eq!((c.sources, c.sinks, c.shells, c.full_relays), (1, 1, 1, 1));
        assert_eq!(n.channel_count(), 3);
    }

    #[test]
    fn unconnected_port_is_rejected() {
        let mut n = Netlist::new();
        let _ = n.add_source("in");
        assert!(matches!(
            n.validate(),
            Err(NetlistError::UnconnectedPort { .. })
        ));
    }

    #[test]
    fn double_connect_is_rejected() {
        let mut n = Netlist::new();
        let src = n.add_source("in");
        let s1 = n.add_sink("o1");
        let s2 = n.add_sink("o2");
        n.connect(src, 0, s1, 0).unwrap();
        assert!(matches!(
            n.connect(src, 0, s2, 0),
            Err(NetlistError::PortAlreadyConnected { .. })
        ));
    }

    #[test]
    fn port_out_of_range_is_rejected() {
        let mut n = Netlist::new();
        let src = n.add_source("in");
        let snk = n.add_sink("out");
        assert!(matches!(
            n.connect(src, 1, snk, 0),
            Err(NetlistError::PortOutOfRange { .. })
        ));
    }

    #[test]
    fn shell_only_loop_is_a_stop_loop() {
        // a -> b -> a with no relay station: the backward stop path is a
        // combinational loop.
        let mut n = Netlist::new();
        let src = n.add_source("in");
        let a = n.add_shell("A", JoinPearl::first(2));
        let b = n.add_shell("B", IdentityPearl::new());
        n.connect(src, 0, a, 0).unwrap();
        n.connect(a, 0, b, 0).unwrap();
        n.connect(b, 0, a, 1).unwrap();
        assert!(matches!(n.validate(), Err(NetlistError::StopLoop { .. })));
    }

    #[test]
    fn relay_in_loop_fixes_stop_loop() {
        let mut n = Netlist::new();
        let a = n.add_shell("A", JoinPearl::first(2));
        let b = n.add_shell("B", IdentityPearl::new());
        let rs = n.add_relay(RelayKind::Half);
        let src = n.add_source("in");
        n.connect(a, 0, b, 0).unwrap();
        n.connect(b, 0, rs, 0).unwrap();
        n.connect(rs, 0, a, 1).unwrap();
        n.connect(src, 0, a, 0).unwrap();
        n.validate().unwrap();
    }

    #[test]
    fn half_relay_only_loop_is_a_data_loop() {
        let mut n = Netlist::new();
        let r1 = n.add_relay(RelayKind::Half);
        let r2 = n.add_relay(RelayKind::Half);
        n.connect(r1, 0, r2, 0).unwrap();
        n.connect(r2, 0, r1, 0).unwrap();
        assert!(matches!(n.validate(), Err(NetlistError::DataLoop { .. })));
    }

    #[test]
    fn shell_to_shell_channels_are_flagged() {
        let mut n = Netlist::new();
        let src = n.add_source("in");
        let a = n.add_shell("A", IdentityPearl::new());
        let b = n.add_shell("B", IdentityPearl::new());
        let out = n.add_sink("out");
        let chans = n.chain(&[src, a, b, out]).unwrap();
        assert_eq!(n.shell_to_shell_channels(), vec![chans[1]]);
    }

    #[test]
    fn insert_relay_rewires_channel() {
        let mut n = Netlist::new();
        let src = n.add_source("in");
        let a = n.add_shell("A", IdentityPearl::new());
        let b = n.add_shell("B", IdentityPearl::new());
        let out = n.add_sink("out");
        let chans = n.chain(&[src, a, b, out]).unwrap();
        let rs = n.insert_relay_on_channel(chans[1], RelayKind::Half);
        n.validate().unwrap();
        assert!(n.shell_to_shell_channels().is_empty());
        assert_eq!(n.successors(a), vec![rs]);
        assert_eq!(n.predecessors(b), vec![rs]);
    }

    #[test]
    fn connect_via_relays_builds_pipeline() {
        let mut n = Netlist::new();
        let src = n.add_source("in");
        let out = n.add_sink("out");
        let relays = n
            .connect_via_relays(src, 0, out, 0, 3, RelayKind::Full)
            .unwrap();
        assert_eq!(relays.len(), 3);
        n.validate().unwrap();
        assert_eq!(n.census().full_relays, 3);
    }

    #[test]
    fn set_relay_kind_substitutes() {
        let mut n = Netlist::new();
        let rs = n.add_relay(RelayKind::Half);
        n.set_relay_kind(rs, RelayKind::Full);
        assert!(matches!(
            n.node(rs).kind(),
            NodeKind::Relay {
                kind: RelayKind::Full
            }
        ));
    }

    #[test]
    #[should_panic(expected = "not a relay station")]
    fn set_relay_kind_rejects_non_relay() {
        let mut n = Netlist::new();
        let s = n.add_source("in");
        n.set_relay_kind(s, RelayKind::Full);
    }

    #[test]
    fn successors_and_predecessors() {
        let (n, src, out) = simple_pipeline();
        assert_eq!(n.successors(src).len(), 1);
        assert_eq!(n.predecessors(out).len(), 1);
        assert!(n.predecessors(src).is_empty());
    }

    #[test]
    fn display_summarises() {
        let (n, ..) = simple_pipeline();
        let s = n.to_string();
        assert!(s.contains("4 nodes"), "{s}");
        assert!(s.contains("1 full-rs"), "{s}");
    }

    #[test]
    fn dot_export_lists_all_nodes_and_edges() {
        let (n, ..) = simple_pipeline();
        let dot = n.to_dot();
        assert!(dot.starts_with("digraph lid {"));
        assert!(dot.trim_end().ends_with('}'));
        assert_eq!(dot.matches("->").count(), n.channel_count());
        assert_eq!(dot.matches("shape=").count(), n.node_count());
        assert!(dot.contains("shape=diamond"), "{dot}");
    }

    #[test]
    fn without_relays_short_circuits_stations() {
        let mut n = Netlist::new();
        let src = n.add_source("in");
        let a = n.add_shell("A", IdentityPearl::new());
        let out = n.add_sink("out");
        n.connect(src, 0, a, 0).unwrap();
        n.connect_via_relays(a, 0, out, 0, 3, RelayKind::Full)
            .unwrap();
        let (reference, map) = n.without_relays();
        reference.validate().unwrap();
        assert_eq!(reference.census().relays(), 0);
        assert_eq!(reference.node_count(), 3);
        assert_eq!(reference.channel_count(), 2);
        // Kept nodes map; relays do not.
        assert!(map[src.index()].is_some());
        assert!(map.iter().filter(|m| m.is_none()).count() == 3);
        // A's successor in the reference is the sink directly.
        let new_a = map[a.index()].unwrap();
        let new_out = map[out.index()].unwrap();
        assert_eq!(reference.successors(new_a), vec![new_out]);
    }

    #[test]
    fn census_relays_total() {
        let mut n = Netlist::new();
        n.add_relay(RelayKind::Full);
        n.add_relay(RelayKind::Half);
        assert_eq!(n.census().relays(), 2);
    }
}
