//! Generators for the netlist families the paper studies.
//!
//! The paper validates its protocol on "many proof-of-concept examples
//! that comprise various combinations of feedforward and feedback
//! topologies". These constructors build those families parametrically,
//! so the experiments can sweep sizes, imbalances and relay mixes:
//!
//! * [`chain`] — linear pipelines (degenerate trees);
//! * [`tree`] — fanout trees (`T = 1`, transient = longest relay path);
//! * [`reconvergent`] — the Fig. 1 family: two sources joining with a
//!   relay imbalance `i`;
//! * [`ring`] — the Fig. 2 family: a loop of `S` shells and `R` relay
//!   stations with an output tap;
//! * [`ring_with_entry`] — a ring fed and drained through one shell, so
//!   external stop/void patterns can disturb the loop (deadlock studies);
//! * [`composed`] — a reconvergent front-end feeding a ring: the "most
//!   general topology" whose slowest sub-topology dictates system speed;
//! * [`random_family`] — seeded random instances across all families,
//!   used by corpus tests.

use lip_core::pearl::{IdentityPearl, JoinPearl, RouterPearl};
use lip_core::{Pattern, RelayKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::netlist::{Netlist, NodeId};

/// A generated linear pipeline:
/// `source -> [relays] -> shell -> [relays] -> shell ... -> sink`.
#[derive(Debug, Clone)]
pub struct Chain {
    /// The netlist.
    pub netlist: Netlist,
    /// The single source.
    pub source: NodeId,
    /// Shells in pipeline order.
    pub shells: Vec<NodeId>,
    /// The single sink.
    pub sink: NodeId,
}

/// Build a linear pipeline of `shells` identity shells with
/// `relays_between` relay stations of `kind` on every channel.
#[must_use]
pub fn chain(shells: usize, relays_between: usize, kind: RelayKind) -> Chain {
    let mut n = Netlist::new();
    let source = n.add_source("in");
    let mut prev = (source, 0usize);
    let mut shell_ids = Vec::with_capacity(shells);
    for i in 0..shells {
        let sh = n.add_shell(format!("s{i}"), IdentityPearl::new());
        n.connect_via_relays(prev.0, prev.1, sh, 0, relays_between, kind)
            .expect("fresh ports");
        shell_ids.push(sh);
        prev = (sh, 0);
    }
    let sink = n.add_sink("out");
    n.connect_via_relays(prev.0, prev.1, sink, 0, relays_between, kind)
        .expect("fresh ports");
    Chain {
        netlist: n,
        source,
        shells: shell_ids,
        sink,
    }
}

/// A generated fanout tree.
#[derive(Debug, Clone)]
pub struct Tree {
    /// The netlist.
    pub netlist: Netlist,
    /// The single source at the root.
    pub source: NodeId,
    /// The leaf sinks.
    pub sinks: Vec<NodeId>,
}

/// Build a fanout tree of `depth` levels of shells, each with `fanout`
/// children, and `relays_per_edge` full relay stations on every channel.
/// `depth == 0` connects the source directly to one sink.
#[must_use]
pub fn tree(depth: usize, fanout: usize, relays_per_edge: usize) -> Tree {
    assert!(fanout >= 1, "fanout must be at least 1");
    let mut n = Netlist::new();
    let source = n.add_source("in");
    let mut sinks = Vec::new();
    // Frontier of (node, out_port) needing children.
    let mut frontier = vec![(source, 0usize)];
    for level in 0..depth {
        let mut next = Vec::new();
        for (i, (node, port)) in frontier.into_iter().enumerate() {
            let sh = if fanout == 1 {
                n.add_shell(format!("l{level}_{i}"), IdentityPearl::new())
            } else {
                n.add_shell(format!("l{level}_{i}"), IdentityPearl::with_fanout(fanout))
            };
            n.connect_via_relays(node, port, sh, 0, relays_per_edge, RelayKind::Full)
                .expect("fresh ports");
            for p in 0..fanout {
                next.push((sh, p));
            }
        }
        frontier = next;
    }
    for (i, (node, port)) in frontier.into_iter().enumerate() {
        let sink = n.add_sink(format!("out{i}"));
        n.connect_via_relays(node, port, sink, 0, relays_per_edge, RelayKind::Full)
            .expect("fresh ports");
        sinks.push(sink);
    }
    Tree {
        netlist: n,
        source,
        sinks,
    }
}

/// The Fig. 1 family: two sources reconverging at a join shell.
#[derive(Debug, Clone)]
pub struct Reconvergent {
    /// The netlist.
    pub netlist: Netlist,
    /// Source feeding the branch with `long_relays` stations.
    pub source_long: NodeId,
    /// Source feeding the branch with `short_relays` stations.
    pub source_short: NodeId,
    /// The join shell ("C" in Fig. 1).
    pub join: NodeId,
    /// The primary output.
    pub sink: NodeId,
    /// Relay stations on the long branch.
    pub long_branch: Vec<NodeId>,
    /// Relay stations on the short branch.
    pub short_branch: Vec<NodeId>,
}

/// Build the reconvergent-inputs topology of Fig. 1: sources `A` and `B`
/// joined at shell `C`, with `long_relays` and `short_relays` full relay
/// stations on the two branches.
#[must_use]
pub fn reconvergent(long_relays: usize, short_relays: usize) -> Reconvergent {
    let mut n = Netlist::new();
    let a = n.add_source("A");
    let b = n.add_source("B");
    let c = n.add_shell("C", JoinPearl::first(2));
    let out = n.add_sink("out");
    let long_branch = n
        .connect_via_relays(a, 0, c, 0, long_relays, RelayKind::Full)
        .expect("fresh ports");
    let short_branch = n
        .connect_via_relays(b, 0, c, 1, short_relays, RelayKind::Full)
        .expect("fresh ports");
    n.connect(c, 0, out, 0).expect("fresh ports");
    Reconvergent {
        netlist: n,
        source_long: a,
        source_short: b,
        join: c,
        sink: out,
        long_branch,
        short_branch,
    }
}

/// The true Fig. 1 topology: a fork whose branches reconverge at a join.
///
/// Unlike [`reconvergent`] (independent sources, whose branches decouple
/// and reach throughput 1 after the transient), a *fork* couples the two
/// branches: the reverse-flowing stop on the short branch and the forward
/// long branch form the paper's implicit loop, and throughput drops to
/// `(m − i)/m`.
#[derive(Debug, Clone)]
pub struct ForkJoin {
    /// The netlist.
    pub netlist: Netlist,
    /// The external source feeding the fork.
    pub source: NodeId,
    /// The fork shell ("A" in Fig. 1).
    pub fork: NodeId,
    /// The middle shell on the long branch ("B" in Fig. 1).
    pub mid: NodeId,
    /// The join shell ("C" in Fig. 1).
    pub join: NodeId,
    /// The primary output.
    pub sink: NodeId,
    /// Relay stations on the long branch (before and after `mid`).
    pub long_relays: Vec<NodeId>,
    /// Relay stations on the short branch.
    pub short_relays: Vec<NodeId>,
}

/// Build the fork-join of Fig. 1: source → `A` (fork), long branch
/// `A → [r1 relays] → B → [r2 relays] → C`, short branch
/// `A → [s relays] → C`, then `C → sink`. All stations are full.
///
/// A zero relay count on a branch segment inserts one half relay station
/// instead, honouring the rule that shell-to-shell channels need a memory
/// element for the stop.
///
/// The paper's Fig. 1 instance is `fork_join(1, 1, 1)`: three relay
/// stations in the implicit loop plus the two shells `A`, `B` on the long
/// branch give `m = 5`; the imbalance is `i = 2 − 1 = 1`; the output
/// utters one void every `m = 5` cycles and `T = 4/5`.
#[must_use]
pub fn fork_join(r1: usize, r2: usize, s: usize) -> ForkJoin {
    let mut n = Netlist::new();
    let source = n.add_source("in");
    let fork = n.add_shell("A", IdentityPearl::with_fanout(2));
    let mid = n.add_shell("B", IdentityPearl::new());
    let join = n.add_shell("C", JoinPearl::first(2));
    let sink = n.add_sink("out");
    n.connect(source, 0, fork, 0).expect("fresh ports");
    let mut long_relays = Vec::new();
    long_relays.extend(segment(&mut n, fork, 0, mid, 0, r1));
    long_relays.extend(segment(&mut n, mid, 0, join, 0, r2));
    let short_relays = segment(&mut n, fork, 1, join, 1, s);
    n.connect(join, 0, sink, 0).expect("fresh ports");
    ForkJoin {
        netlist: n,
        source,
        fork,
        mid,
        join,
        sink,
        long_relays,
        short_relays,
    }
}

/// Connect through `count` full relay stations, or one half station when
/// `count == 0` (minimum-memory rule between shells).
fn segment(
    n: &mut Netlist,
    from: NodeId,
    from_port: usize,
    to: NodeId,
    to_port: usize,
    count: usize,
) -> Vec<NodeId> {
    if count == 0 {
        n.connect_via_relays(from, from_port, to, to_port, 1, RelayKind::Half)
            .expect("fresh ports")
    } else {
        n.connect_via_relays(from, from_port, to, to_port, count, RelayKind::Full)
            .expect("fresh ports")
    }
}

/// The Fig. 1 instance: `fork_join(1, 1, 1)` with `m = 5`, `i = 1`,
/// `T = 4/5`.
#[must_use]
pub fn fig1() -> ForkJoin {
    fork_join(1, 1, 1)
}

/// The Fig. 2 family: a closed loop with an output tap.
#[derive(Debug, Clone)]
pub struct Ring {
    /// The netlist.
    pub netlist: Netlist,
    /// Shells on the loop, starting with the tapped one.
    pub shells: Vec<NodeId>,
    /// Relay stations on the loop.
    pub relays: Vec<NodeId>,
    /// The primary output tapping the first shell.
    pub sink: NodeId,
}

/// Build a closed loop of `shells` shells and `relays` relay stations of
/// `kind`, with the first shell fanning out to a sink so loop throughput
/// is observable. All relay stations sit on the channel leaving the first
/// shell.
///
/// # Panics
///
/// Panics if `shells == 0`.
#[must_use]
pub fn ring(shells: usize, relays: usize, kind: RelayKind) -> Ring {
    assert!(shells >= 1, "a ring needs at least one shell");
    let mut n = Netlist::new();
    let mut shell_ids = Vec::with_capacity(shells);
    for i in 0..shells {
        let sh = if i == 0 {
            n.add_shell("tap", IdentityPearl::with_fanout(2))
        } else {
            n.add_shell(format!("s{i}"), IdentityPearl::new())
        };
        shell_ids.push(sh);
    }
    // Loop: tap(port0) -> relays -> s1 -> ... -> s_{k-1} -> tap(in).
    let mut relay_ids = Vec::new();
    let mut prev = (shell_ids[0], 0usize);
    for _ in 0..relays {
        let rs = n.add_relay(kind);
        n.connect(prev.0, prev.1, rs, 0).expect("fresh ports");
        relay_ids.push(rs);
        prev = (rs, 0);
    }
    for sh in shell_ids.iter().skip(1) {
        n.connect(prev.0, prev.1, *sh, 0).expect("fresh ports");
        prev = (*sh, 0);
    }
    n.connect(prev.0, prev.1, shell_ids[0], 0)
        .expect("fresh ports");
    let sink = n.add_sink("out");
    n.connect(shell_ids[0], 1, sink, 0).expect("fresh ports");
    Ring {
        netlist: n,
        shells: shell_ids,
        relays: relay_ids,
        sink,
    }
}

/// A ring fed and drained through an entry shell, so that external void
/// and stop patterns can disturb the loop.
#[derive(Debug, Clone)]
pub struct RingWithEntry {
    /// The netlist.
    pub netlist: Netlist,
    /// The entry shell (2 inputs: external + loop; 2 outputs: loop +
    /// external).
    pub entry: NodeId,
    /// The external source.
    pub source: NodeId,
    /// The external sink.
    pub sink: NodeId,
    /// Shells on the loop including the entry.
    pub shells: Vec<NodeId>,
    /// Relay stations on the loop.
    pub relays: Vec<NodeId>,
}

/// Build a ring of `shells` shells and `relays` loop relay stations of
/// `kind`, where the first shell also consumes an external source (with
/// `void_pattern`) and produces to an external sink (with
/// `stop_pattern`). This is the configuration in which loop deadlocks can
/// be injected from outside.
///
/// # Panics
///
/// Panics if `shells == 0`.
#[must_use]
pub fn ring_with_entry(
    shells: usize,
    relays: usize,
    kind: RelayKind,
    void_pattern: Pattern,
    stop_pattern: Pattern,
) -> RingWithEntry {
    assert!(shells >= 1, "a ring needs at least one shell");
    let mut n = Netlist::new();
    let entry = n.add_shell("entry", RouterPearl::new(2, 2));
    let mut shell_ids = vec![entry];
    for i in 1..shells {
        shell_ids.push(n.add_shell(format!("s{i}"), IdentityPearl::new()));
    }
    // Loop: entry(out0) -> relays -> s1 ... -> entry(in0).
    let mut relay_ids = Vec::new();
    let mut prev = (entry, 0usize);
    for _ in 0..relays {
        let rs = n.add_relay(kind);
        n.connect(prev.0, prev.1, rs, 0).expect("fresh ports");
        relay_ids.push(rs);
        prev = (rs, 0);
    }
    for sh in shell_ids.iter().skip(1) {
        n.connect(prev.0, prev.1, *sh, 0).expect("fresh ports");
        prev = (*sh, 0);
    }
    n.connect(prev.0, prev.1, entry, 0).expect("fresh ports");
    // External I/O on the entry shell.
    let source = n.add_source_with_pattern("in", void_pattern);
    let sink = n.add_sink_with_pattern("out", stop_pattern);
    n.connect(source, 0, entry, 1).expect("fresh ports");
    n.connect(entry, 1, sink, 0).expect("fresh ports");
    RingWithEntry {
        netlist: n,
        entry,
        source,
        sink,
        shells: shell_ids,
        relays: relay_ids,
    }
}

/// A reconvergent front-end feeding a ring: the paper's "feed-forward
/// combination of self-interacting loops".
#[derive(Debug, Clone)]
pub struct Composed {
    /// The netlist.
    pub netlist: Netlist,
    /// The reconvergent join shell.
    pub join: NodeId,
    /// The ring entry shell.
    pub entry: NodeId,
    /// The primary output.
    pub sink: NodeId,
}

/// Build a composition: two sources reconverge (imbalance
/// `long_relays − short_relays`), the joined stream feeds a ring of
/// `ring_shells`/`ring_relays`, whose output drains to a sink. The system
/// throughput must equal the minimum of the two sub-topology throughputs.
#[must_use]
pub fn composed(
    long_relays: usize,
    short_relays: usize,
    ring_shells: usize,
    ring_relays: usize,
) -> Composed {
    assert!(ring_shells >= 1, "a ring needs at least one shell");
    let mut n = Netlist::new();
    // Front-end.
    let a = n.add_source("A");
    let b = n.add_source("B");
    let join = n.add_shell("join", JoinPearl::first(2));
    n.connect_via_relays(a, 0, join, 0, long_relays, RelayKind::Full)
        .expect("fresh ports");
    n.connect_via_relays(b, 0, join, 1, short_relays, RelayKind::Full)
        .expect("fresh ports");
    // Ring with entry; the entry's external input comes from the join
    // (via one relay station, respecting the shell-to-shell rule).
    let entry = n.add_shell("entry", RouterPearl::new(2, 2));
    let mut shell_ids = vec![entry];
    for i in 1..ring_shells {
        shell_ids.push(n.add_shell(format!("r{i}"), IdentityPearl::new()));
    }
    let mut prev = (entry, 0usize);
    for _ in 0..ring_relays {
        let rs = n.add_relay(RelayKind::Full);
        n.connect(prev.0, prev.1, rs, 0).expect("fresh ports");
        prev = (rs, 0);
    }
    for sh in shell_ids.iter().skip(1) {
        n.connect(prev.0, prev.1, *sh, 0).expect("fresh ports");
        prev = (*sh, 0);
    }
    n.connect(prev.0, prev.1, entry, 0).expect("fresh ports");
    n.connect_via_relays(join, 0, entry, 1, 1, RelayKind::Full)
        .expect("fresh ports");
    let sink = n.add_sink("out");
    n.connect(entry, 1, sink, 0).expect("fresh ports");
    Composed {
        netlist: n,
        join,
        entry,
        sink,
    }
}

/// A coupled composition: a fork-join front-end (a *binding*
/// reconvergence, unlike [`composed`]'s independent sources) feeding a
/// ring. The system throughput is exactly
/// `min(front-end (m−i)/m, ring S/(S+R))`.
#[derive(Debug, Clone)]
pub struct ComposedCoupled {
    /// The netlist.
    pub netlist: Netlist,
    /// The fork shell of the front-end.
    pub fork: NodeId,
    /// The join shell of the front-end.
    pub join: NodeId,
    /// The ring entry shell.
    pub entry: NodeId,
    /// The primary output.
    pub sink: NodeId,
}

/// Build `source → fork-join(r1, r2, s) → [RS] → ring(ring_shells,
/// ring_relays) → sink`: both sub-topologies bind, so the measured
/// system throughput equals the minimum of their closed forms.
#[must_use]
pub fn composed_coupled(
    r1: usize,
    r2: usize,
    s: usize,
    ring_shells: usize,
    ring_relays: usize,
) -> ComposedCoupled {
    assert!(ring_shells >= 1, "a ring needs at least one shell");
    let mut n = Netlist::new();
    let source = n.add_source("in");
    let fork = n.add_shell("A", IdentityPearl::with_fanout(2));
    let mid = n.add_shell("B", IdentityPearl::new());
    let join = n.add_shell("C", JoinPearl::first(2));
    n.connect(source, 0, fork, 0).expect("fresh ports");
    segment(&mut n, fork, 0, mid, 0, r1);
    segment(&mut n, mid, 0, join, 0, r2);
    segment(&mut n, fork, 1, join, 1, s);
    // Ring fed through its entry shell.
    let entry = n.add_shell("entry", RouterPearl::new(2, 2));
    let mut shell_ids = vec![entry];
    for i in 1..ring_shells {
        shell_ids.push(n.add_shell(format!("r{i}"), IdentityPearl::new()));
    }
    let mut prev = (entry, 0usize);
    for _ in 0..ring_relays {
        let rs = n.add_relay(RelayKind::Full);
        n.connect(prev.0, prev.1, rs, 0).expect("fresh ports");
        prev = (rs, 0);
    }
    for sh in shell_ids.iter().skip(1) {
        n.connect(prev.0, prev.1, *sh, 0).expect("fresh ports");
        prev = (*sh, 0);
    }
    n.connect(prev.0, prev.1, entry, 0).expect("fresh ports");
    n.connect_via_relays(join, 0, entry, 1, 1, RelayKind::Full)
        .expect("fresh ports");
    let sink = n.add_sink("out");
    n.connect(entry, 1, sink, 0).expect("fresh ports");
    ComposedCoupled {
        netlist: n,
        fork,
        join,
        entry,
        sink,
    }
}

/// A closed loop of *buffered* shells — legal with no relay stations at
/// all, because each buffered shell registers its inputs (saving the
/// stop inside the shell, as in the proposals the paper simplifies).
#[derive(Debug, Clone)]
pub struct BufferedRing {
    /// The netlist.
    pub netlist: Netlist,
    /// Shells on the loop, starting with the tapped one.
    pub shells: Vec<NodeId>,
    /// The primary output tapping the first shell.
    pub sink: NodeId,
}

/// Build a loop of `shells` buffered shells with `relays` full relay
/// stations, tapped to a sink. With `relays == 0` this is the
/// configuration the simplified shell *cannot* realise — the buffered
/// shell's input registers supply the loop's mandatory memory elements.
///
/// # Panics
///
/// Panics if `shells == 0`.
#[must_use]
pub fn buffered_ring(shells: usize, relays: usize) -> BufferedRing {
    assert!(shells >= 1, "a ring needs at least one shell");
    let mut n = Netlist::new();
    let mut shell_ids = Vec::with_capacity(shells);
    for i in 0..shells {
        let sh = if i == 0 {
            n.add_buffered_shell("tap", IdentityPearl::with_fanout(2))
        } else {
            n.add_buffered_shell(format!("s{i}"), IdentityPearl::new())
        };
        shell_ids.push(sh);
    }
    let mut prev = (shell_ids[0], 0usize);
    for _ in 0..relays {
        let rs = n.add_relay(RelayKind::Full);
        n.connect(prev.0, prev.1, rs, 0).expect("fresh ports");
        prev = (rs, 0);
    }
    for sh in shell_ids.iter().skip(1) {
        n.connect(prev.0, prev.1, *sh, 0).expect("fresh ports");
        prev = (*sh, 0);
    }
    n.connect(prev.0, prev.1, shell_ids[0], 0)
        .expect("fresh ports");
    let sink = n.add_sink("out");
    n.connect(shell_ids[0], 1, sink, 0).expect("fresh ports");
    BufferedRing {
        netlist: n,
        shells: shell_ids,
        sink,
    }
}

/// The two memory-equivalent realisations of the same `shells`-stage
/// pipeline: `(simplified shells + half stations, buffered shells)`.
/// Used by the minimum-memory ablation (`EXP-A2`): both use the same
/// total storage and behave identically.
#[must_use]
pub fn memory_equivalent_chains(shells: usize) -> (Chain, Chain) {
    // Simplified: one half station immediately before each shell input.
    let mut n = Netlist::new();
    let source = n.add_source("in");
    let mut prev = (source, 0usize);
    let mut shell_ids = Vec::with_capacity(shells);
    for i in 0..shells {
        let sh = n.add_shell(format!("s{i}"), IdentityPearl::new());
        n.connect_via_relays(prev.0, prev.1, sh, 0, 1, RelayKind::Half)
            .expect("fresh ports");
        shell_ids.push(sh);
        prev = (sh, 0);
    }
    let sink = n.add_sink("out");
    n.connect(prev.0, prev.1, sink, 0).expect("fresh ports");
    let simple = Chain {
        netlist: n,
        source,
        shells: shell_ids,
        sink,
    };

    // Buffered: same pipeline, the stations fused into the shells.
    let mut n = Netlist::new();
    let source = n.add_source("in");
    let mut prev = (source, 0usize);
    let mut shell_ids = Vec::with_capacity(shells);
    for i in 0..shells {
        let sh = n.add_buffered_shell(format!("s{i}"), IdentityPearl::new());
        n.connect(prev.0, prev.1, sh, 0).expect("fresh ports");
        shell_ids.push(sh);
        prev = (sh, 0);
    }
    let sink = n.add_sink("out");
    n.connect(prev.0, prev.1, sink, 0).expect("fresh ports");
    let buffered = Chain {
        netlist: n,
        source,
        shells: shell_ids,
        sink,
    };
    (simple, buffered)
}

/// Which family a random instance belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Linear pipeline.
    Chain,
    /// Fanout tree.
    Tree,
    /// Independent-source reconvergence (decoupled branches).
    Reconvergent,
    /// Fig. 1 fork-join reconvergence (coupled branches).
    ForkJoin,
    /// Fig. 2 ring.
    Ring,
    /// Reconvergence feeding a ring.
    Composed,
    /// Ring of buffered shells.
    BufferedRing,
    /// Ring with sized FIFO stations.
    FifoRing,
}

/// A seeded random instance from one of the families, with bounded size.
/// Deterministic in `seed`. Used by corpus tests and the deadlock sweep.
#[must_use]
pub fn random_family(seed: u64) -> (Family, Netlist) {
    let mut rng = SmallRng::seed_from_u64(seed);
    match rng.gen_range(0..8u32) {
        6 => {
            let r = buffered_ring(rng.gen_range(1..5), rng.gen_range(0..3));
            (Family::BufferedRing, r.netlist)
        }
        7 => {
            let cap = rng.gen_range(2..5u8);
            let r = ring(
                rng.gen_range(1..4),
                rng.gen_range(1..4),
                RelayKind::Fifo(cap),
            );
            (Family::FifoRing, r.netlist)
        }
        0 => {
            let c = chain(
                rng.gen_range(1..5),
                rng.gen_range(0..3),
                pick_kind(&mut rng),
            );
            (Family::Chain, c.netlist)
        }
        1 => {
            let t = tree(
                rng.gen_range(1..4),
                rng.gen_range(1..3),
                rng.gen_range(0..3),
            );
            (Family::Tree, t.netlist)
        }
        2 => {
            let long = rng.gen_range(1..6);
            let short = rng.gen_range(0..=long);
            (Family::Reconvergent, reconvergent(long, short).netlist)
        }
        3 => {
            let r = ring(rng.gen_range(1..5), rng.gen_range(0..4), RelayKind::Full);
            (Family::Ring, r.netlist)
        }
        4 => {
            let f = fork_join(
                rng.gen_range(0..3),
                rng.gen_range(0..3),
                rng.gen_range(0..3),
            );
            (Family::ForkJoin, f.netlist)
        }
        _ => {
            let long = rng.gen_range(1..4);
            let short = rng.gen_range(0..=long);
            let c = composed(long, short, rng.gen_range(1..4), rng.gen_range(0..3));
            (Family::Composed, c.netlist)
        }
    }
}

fn pick_kind(rng: &mut SmallRng) -> RelayKind {
    if rng.gen_bool(0.5) {
        RelayKind::Full
    } else {
        RelayKind::Half
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{classify, TopologyClass};

    #[test]
    fn chain_validates() {
        let c = chain(3, 2, RelayKind::Full);
        c.netlist.validate().unwrap();
        assert_eq!(c.shells.len(), 3);
        assert_eq!(c.netlist.census().full_relays, 8); // 4 gaps x 2
        assert_eq!(classify(&c.netlist), TopologyClass::Tree);
    }

    #[test]
    fn chain_with_half_relays_validates() {
        let c = chain(2, 1, RelayKind::Half);
        c.netlist.validate().unwrap();
        assert_eq!(c.netlist.census().half_relays, 3);
    }

    #[test]
    fn tree_validates_and_counts_leaves() {
        let t = tree(2, 2, 1);
        t.netlist.validate().unwrap();
        assert_eq!(t.sinks.len(), 4);
        assert_eq!(classify(&t.netlist), TopologyClass::Tree);
        // Edges: 1 + 2 + 4 = 7, one relay each.
        assert_eq!(t.netlist.census().full_relays, 7);
    }

    #[test]
    fn degenerate_tree_is_a_wire() {
        let t = tree(0, 1, 0);
        t.netlist.validate().unwrap();
        assert_eq!(t.sinks.len(), 1);
    }

    #[test]
    fn reconvergent_matches_fig1_shape() {
        let r = reconvergent(2, 1);
        r.netlist.validate().unwrap();
        assert_eq!(classify(&r.netlist), TopologyClass::ReconvergentFeedForward);
        assert_eq!(r.long_branch.len(), 2);
        assert_eq!(r.short_branch.len(), 1);
    }

    #[test]
    fn fork_join_matches_fig1_shape() {
        let f = fig1();
        f.netlist.validate().unwrap();
        assert_eq!(classify(&f.netlist), TopologyClass::ReconvergentFeedForward);
        assert_eq!(f.long_relays.len(), 2);
        assert_eq!(f.short_relays.len(), 1);
        assert_eq!(f.netlist.census().shells, 3); // A, B, C
    }

    #[test]
    fn fork_join_zero_segments_use_half_relays() {
        let f = fork_join(0, 0, 0);
        f.netlist.validate().unwrap();
        assert_eq!(f.netlist.census().half_relays, 3);
        assert_eq!(f.netlist.census().full_relays, 0);
    }

    #[test]
    fn ring_matches_fig2_shape() {
        let r = ring(2, 1, RelayKind::Full);
        r.netlist.validate().unwrap();
        assert_eq!(classify(&r.netlist), TopologyClass::Feedback);
        assert_eq!(r.shells.len(), 2);
        assert_eq!(r.relays.len(), 1);
    }

    #[test]
    fn shell_only_ring_is_invalid() {
        // A loop with zero relay stations violates the minimum-memory
        // rule and must be rejected.
        let r = ring(2, 0, RelayKind::Full);
        assert!(r.netlist.validate().is_err());
    }

    #[test]
    fn ring_with_entry_validates() {
        let r = ring_with_entry(
            2,
            1,
            RelayKind::Half,
            Pattern::Never,
            Pattern::EveryNth {
                period: 3,
                phase: 0,
            },
        );
        r.netlist.validate().unwrap();
        assert_eq!(classify(&r.netlist), TopologyClass::Feedback);
    }

    #[test]
    fn composed_validates() {
        let c = composed(2, 1, 2, 1);
        c.netlist.validate().unwrap();
        assert_eq!(classify(&c.netlist), TopologyClass::Feedback);
    }

    #[test]
    fn buffered_ring_without_relays_is_legal() {
        // The whole point of the buffered shell: a loop with no relay
        // stations at all still satisfies minimum memory (the input
        // registers save the stops).
        let r = buffered_ring(3, 0);
        r.netlist.validate().unwrap();
        assert_eq!(classify(&r.netlist), TopologyClass::Feedback);
        assert_eq!(r.netlist.census().relays(), 0);
        assert_eq!(r.netlist.census().buffered_shells, 3);
        // The same loop with simplified shells is rejected.
        let bad = ring(3, 0, RelayKind::Full);
        assert!(bad.netlist.validate().is_err());
    }

    #[test]
    fn memory_equivalent_chains_have_equal_storage() {
        let (simple, buffered) = memory_equivalent_chains(3);
        simple.netlist.validate().unwrap();
        buffered.netlist.validate().unwrap();
        let cs = simple.netlist.census();
        let cb = buffered.netlist.census();
        // Registers: shell outputs + half-station registers vs shell
        // outputs + input buffers: identical totals.
        let simple_regs = cs.shells + cs.half_relays;
        let buffered_regs = cb.shells + cb.buffered_shells; // outputs + input buffers
        assert_eq!(simple_regs, buffered_regs);
    }

    #[test]
    fn random_family_is_deterministic() {
        for seed in 0..30u64 {
            let (fam_a, net_a) = random_family(seed);
            let (fam_b, net_b) = random_family(seed);
            assert_eq!(fam_a, fam_b);
            assert_eq!(net_a.node_count(), net_b.node_count());
            assert_eq!(net_a.channel_count(), net_b.channel_count());
        }
    }

    #[test]
    fn random_instances_mostly_validate() {
        // Rings with zero relays are generated occasionally and are
        // legitimately invalid (stop loop); everything else validates.
        let mut valid = 0;
        for seed in 0..60u64 {
            let (_, net) = random_family(seed);
            if net.validate().is_ok() {
                valid += 1;
            }
        }
        assert!(valid >= 40, "only {valid}/60 random instances validated");
    }
}
