//! Source spans for textual netlists.
//!
//! The parser in [`text`](crate::text) records, for every node and
//! channel it creates, the line/column of the declaring statement.
//! Parse errors and the `lip-lint` rule engine share this machinery, so
//! a diagnostic about a netlist object can point back into the `.lid`
//! file it came from.

use std::fmt;

use crate::netlist::{ChannelId, NodeId};

/// A position in a textual netlist: 1-based line and 1-based byte
/// column of the first character of the relevant token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based byte column within the line.
    pub col: u32,
}

impl Span {
    /// Construct a span from 1-based line and column.
    #[must_use]
    pub const fn new(line: u32, col: u32) -> Self {
        Self { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Maps netlist nodes and channels back to the spans of the statements
/// that declared them.
///
/// Lookups are total: nodes or channels created *after* parsing (for
/// example by a fix-it that inserts a relay station) have no span and
/// return `None`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceMap {
    nodes: Vec<Option<Span>>,
    channels: Vec<Option<Span>>,
}

impl SourceMap {
    /// An empty map: every lookup returns `None`.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Span of the statement that declared `node`, if it was parsed
    /// from text.
    #[must_use]
    pub fn node(&self, node: NodeId) -> Option<Span> {
        self.nodes.get(node.index()).copied().flatten()
    }

    /// Span of the `connect` statement that created `channel`, if it
    /// was parsed from text.
    #[must_use]
    pub fn channel(&self, channel: ChannelId) -> Option<Span> {
        self.channels.get(channel.index()).copied().flatten()
    }

    /// Record the declaring span of `node`.
    pub fn record_node(&mut self, node: NodeId, span: Span) {
        let i = node.index();
        if self.nodes.len() <= i {
            self.nodes.resize(i + 1, None);
        }
        self.nodes[i] = Some(span);
    }

    /// Record the declaring span of `channel`.
    pub fn record_channel(&mut self, channel: ChannelId, span: Span) {
        let i = channel.index();
        if self.channels.len() <= i {
            self.channels.resize(i + 1, None);
        }
        self.channels[i] = Some(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups_are_total() {
        let mut map = SourceMap::new();
        let missing = NodeId(7);
        assert_eq!(map.node(missing), None);
        map.record_node(NodeId(2), Span::new(4, 9));
        assert_eq!(map.node(NodeId(2)), Some(Span::new(4, 9)));
        assert_eq!(map.node(NodeId(0)), None);
        assert_eq!(map.node(missing), None);
        map.record_channel(ChannelId(1), Span::new(10, 1));
        assert_eq!(map.channel(ChannelId(1)), Some(Span::new(10, 1)));
        assert_eq!(map.channel(ChannelId(0)), None);
    }

    #[test]
    fn span_displays_line_col() {
        assert_eq!(Span::new(3, 14).to_string(), "3:14");
    }
}
