//! Netlists of latency-insensitive designs, and the topology analyses the
//! paper's performance formulas rest on.
//!
//! A [`Netlist`] is the LID system graph: sources, [`Shell`]-wrapped
//! pearls, relay stations and sinks joined by point-to-point channels.
//! [`Netlist::validate`] enforces the paper's structural rules — above
//! all the minimum-memory theorem: every directed cycle must contain a
//! relay station (otherwise the backward `stop` path is a combinational
//! loop, since the simplified shell stores no stops), and every cycle
//! must contain a shell or full relay station (otherwise the forward data
//! path is combinational through half-station bypasses).
//!
//! [`topology`] classifies netlists into the paper's taxonomy (tree /
//! reconvergent feed-forward / feedback) and measures the quantities in
//! its throughput formulas; [`generate`] builds the proof-of-concept
//! families parametrically.
//!
//! # Example
//!
//! ```
//! use lip_graph::{generate, topology};
//!
//! // The Fig. 1 instance: relay imbalance i = 1.
//! let fig1 = generate::reconvergent(2, 1);
//! fig1.netlist.validate()?;
//! assert_eq!(
//!     topology::classify(&fig1.netlist),
//!     topology::TopologyClass::ReconvergentFeedForward,
//! );
//! assert_eq!(topology::join_imbalance(&fig1.netlist, fig1.join), Some(1));
//! # Ok::<(), lip_graph::NetlistError>(())
//! ```
//!
//! [`Shell`]: lip_core::Shell

#![warn(missing_docs)]

mod error;
pub mod generate;
mod netlist;
pub mod span;
pub mod text;
pub mod topology;

pub use error::NetlistError;
pub use netlist::{Channel, ChannelId, Netlist, NetlistCensus, Node, NodeId, NodeKind, Port};
pub use span::{SourceMap, Span};
pub use text::{
    parse_netlist, parse_netlist_spanned, write_netlist, ParseErrorKind, ParseNetlistError,
    ParsedNetlist,
};
