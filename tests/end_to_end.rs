//! Cross-crate end-to-end consistency over the generated corpus:
//! netlist -> analysis -> simulation -> verification must tell one
//! coherent story on every instance.

use lip::analysis::{enforce_min_memory, predict_throughput, transient_bound, MarkedGraph};
use lip::graph::{generate, topology, Netlist};
use lip::protocol::pearl::IdentityPearl;
use lip::protocol::RelayKind;
use lip::sim::measure::{check_liveness, measure};
use lip::sim::{SkeletonSystem, System};

/// Analysis predicts simulation exactly, on every valid corpus instance
/// with a periodic environment.
#[test]
fn prediction_equals_measurement_on_corpus() {
    let mut checked = 0;
    for seed in 0..60u64 {
        let (fam, netlist) = generate::random_family(seed);
        if netlist.validate().is_err() {
            continue;
        }
        let predicted = predict_throughput(&netlist).expect("corpus is periodic");
        let m = measure(&netlist).unwrap();
        if m.periodicity.is_none() {
            continue;
        }
        assert_eq!(
            m.system_throughput(),
            Some(predicted),
            "seed {seed} ({fam:?}): prediction vs measurement"
        );
        checked += 1;
    }
    assert!(checked >= 40, "only {checked} instances checked");
}

/// The marked-graph model is invariant under re-elaboration and agrees
/// with the closed-form dispatcher.
#[test]
fn model_is_deterministic() {
    for seed in 0..20u64 {
        let (_, netlist) = generate::random_family(seed);
        if netlist.validate().is_err() {
            continue;
        }
        let a = MarkedGraph::new(&netlist).min_cycle_ratio();
        let b = MarkedGraph::new(&netlist).min_cycle_ratio();
        assert_eq!(a, b);
    }
}

/// A raw shell-to-shell design becomes legal and correct after the
/// minimum-memory pass, and still computes the same streams.
#[test]
fn min_memory_pass_preserves_behaviour() {
    // Build a 4-stage shell pipeline with *no* relay stations at all.
    let mut n = Netlist::new();
    let src = n.add_source("in");
    let shells: Vec<_> = (0..4)
        .map(|i| n.add_shell(format!("s{i}"), IdentityPearl::new()))
        .collect();
    let out = n.add_sink("out");
    let mut all = vec![src];
    all.extend(&shells);
    all.push(out);
    n.chain(&all).unwrap();
    assert_eq!(n.shell_to_shell_channels().len(), 3);

    // Reference behaviour before the pass (legal: no loops).
    let mut ref_sys = System::new(&n).unwrap();
    ref_sys.run(60);
    let reference = ref_sys.sink(out).unwrap().received().to_vec();

    let inserted = enforce_min_memory(&mut n);
    assert_eq!(inserted.len(), 3);
    assert!(n.shell_to_shell_channels().is_empty());
    n.validate().unwrap();

    let mut sys = System::new(&n).unwrap();
    sys.run(60);
    let got = sys.sink(out).unwrap().received().to_vec();
    // Half stations add no latency and no reordering: identical stream.
    assert_eq!(got, reference);
}

/// Skeleton and full simulation agree on *measured* quantities, not
/// just control states: sink counts and firing counts.
#[test]
fn skeleton_counts_match_full_counts() {
    for seed in 0..30u64 {
        let (_, netlist) = generate::random_family(seed);
        if netlist.validate().is_err() {
            continue;
        }
        let mut full = System::new(&netlist).unwrap();
        let mut skel = SkeletonSystem::new(&netlist).unwrap();
        full.run(200);
        skel.run(200);
        for sink in netlist.sinks() {
            let f = full.sink(sink).unwrap();
            let (valid, voids) = skel.sink_counts(sink).unwrap();
            assert_eq!(f.received().len() as u64, valid, "seed {seed} sink counts");
            assert_eq!(f.voids_seen(), voids, "seed {seed} void counts");
        }
        for shell in netlist.shells() {
            assert_eq!(
                full.shell_stats(shell).unwrap().fires,
                skel.shell_fires(shell).unwrap(),
                "seed {seed} fire counts"
            );
        }
    }
}

/// Throughput is conserved across series composition: sinks of the same
/// feed-forward system see the same steady rate.
#[test]
fn steady_rate_is_uniform_in_trees() {
    let t = generate::tree(3, 2, 1);
    let m = measure(&t.netlist).unwrap();
    let rates: Vec<_> = m.sinks.iter().map(|s| s.throughput).collect();
    assert!(rates.windows(2).all(|w| w[0] == w[1]), "{rates:?}");
}

/// Liveness decided by the skeleton matches liveness decided by full
/// simulation.
#[test]
fn liveness_verdicts_are_engine_independent() {
    for kind in [RelayKind::Full, RelayKind::Half] {
        for (s, r) in [(1usize, 1usize), (2, 2)] {
            let ring = generate::ring(s, r, kind);
            if ring.netlist.validate().is_err() {
                continue;
            }
            let via_full = check_liveness(&ring.netlist, 5_000, 1_000)
                .unwrap()
                .is_live();
            // Skeleton: run well past the transient; all shells must
            // keep firing if and only if the full engine says so.
            let mut sk = SkeletonSystem::new(&ring.netlist).unwrap();
            sk.run(500);
            let before: Vec<_> = ring
                .netlist
                .shells()
                .iter()
                .map(|s| sk.shell_fires(*s).unwrap())
                .collect();
            sk.run(100);
            let via_skel = ring
                .netlist
                .shells()
                .iter()
                .enumerate()
                .all(|(i, s)| sk.shell_fires(*s).unwrap() > before[i]);
            assert_eq!(via_full, via_skel, "{kind} ring({s},{r})");
        }
    }
}

/// Transient bound holds even with patterned environments.
#[test]
fn transient_bound_with_environment_patterns() {
    use lip::protocol::Pattern;
    let ring = generate::ring_with_entry(
        2,
        1,
        RelayKind::Full,
        Pattern::EveryNth {
            period: 3,
            phase: 0,
        },
        Pattern::EveryNth {
            period: 4,
            phase: 2,
        },
    );
    let bound = transient_bound(&ring.netlist);
    let m = measure(&ring.netlist).unwrap();
    let p = m.periodicity.expect("periodic environment");
    assert!(p.transient <= bound, "{} > {bound}", p.transient);
    // The steady period divides a multiple of the environment lcm.
    assert_eq!(p.period % 12, 0, "period {} vs env lcm 12", p.period);
}

/// Topology classification is stable under relay insertion.
#[test]
fn classification_stable_under_insertion() {
    let mut f = generate::fig1();
    let class = topology::classify(&f.netlist);
    let chans: Vec<_> = f.netlist.channels().map(|(id, _)| id).collect();
    f.netlist.insert_relay_on_channel(chans[0], RelayKind::Full);
    assert_eq!(topology::classify(&f.netlist), class);
}
