//! The shipped `.lid` design files parse, validate, elaborate and
//! behave; they are part of the public interface (the CLI points users
//! at them).

use lip::analysis::predict_throughput;
use lip::graph::parse_netlist;
use lip::sim::measure;

fn load(name: &str) -> lip::graph::Netlist {
    let text = std::fs::read_to_string(format!("designs/{name}")).expect("design file");
    let (netlist, _) = parse_netlist(&text).expect("parses");
    netlist.validate().expect("validates");
    netlist
}

#[test]
fn fig1_design_file_reproduces_the_paper() {
    let n = load("fig1.lid");
    let m = measure(&n).unwrap();
    assert_eq!(m.periodicity.unwrap().period, 5);
    assert_eq!(m.system_throughput().unwrap().to_string(), "4/5");
}

#[test]
fn soc_design_file_is_bound_by_its_sink() {
    let n = load("soc.lid");
    // The sink accepts 6 of 7 cycles and the datapath is balanced
    // enough to keep up: the environment is the binding constraint.
    let predicted = predict_throughput(&n).unwrap();
    assert_eq!(predicted.to_string(), "6/7");
    assert_eq!(measure(&n).unwrap().system_throughput(), Some(predicted));
}

#[test]
fn buffered_loop_design_file_runs_at_full_rate() {
    let n = load("buffered_loop.lid");
    assert_eq!(n.census().relays(), 0); // genuinely relay-free
    let m = measure(&n).unwrap();
    assert_eq!(m.system_throughput().unwrap().to_string(), "1/1");
}
