//! Every quantitative claim of Casu & Macchiarulo (DATE 2004), asserted
//! end-to-end through the public API. These are the acceptance tests of
//! the reproduction; `EXPERIMENTS.md` indexes each one.

use lip::analysis::{
    closed_form, equalize, loop_throughput, predict_throughput, transient_bound, ClosedForm,
};
use lip::graph::{generate, topology};
use lip::protocol::{ProtocolVariant, RelayKind};
use lip::sim::measure::{check_liveness, find_periodicity, measure};
use lip::sim::{Evolution, Ratio, SkeletonSystem, System};
use lip::verify::{explore, verify_all, Dut};

/// Fig. 1: the reconvergent feed-forward evolution. "After the initial
/// transient, the situation becomes periodic, and the output utters an
/// invalid datum every 5 cycles ... the throughput is 4/5."
#[test]
fn fig1_period_five_one_void_throughput_four_fifths() {
    let f = generate::fig1();
    let m = measure(&f.netlist).unwrap();
    let p = m.periodicity.expect("periodic after transient");
    assert_eq!(p.period, 5);
    assert_eq!(m.system_throughput(), Some(Ratio::new(4, 5)));

    // One void at the output per period, i = 1 relay imbalance.
    assert_eq!(topology::join_imbalance(&f.netlist, f.join), Some(1));
    let ev = Evolution::record(&f.netlist, &[f.join], 30).unwrap();
    let voids: Vec<usize> = (10..30)
        .filter(|&r| ev.rows()[r].outputs[0].0[0].is_void())
        .collect();
    for w in voids.windows(2) {
        assert_eq!(w[1] - w[0], 5);
    }
}

/// Fig. 1 general formula: `T = (m − i)/m`.
#[test]
fn reconvergent_formula_holds_across_imbalances() {
    for (r1, r2, s) in [
        (1usize, 1usize, 1usize),
        (2, 1, 1),
        (1, 2, 1),
        (2, 2, 1),
        (2, 1, 2),
        (3, 1, 1),
        (1, 1, 3),
    ] {
        let f = generate::fork_join(r1, r2, s);
        let loop_relays = (r1 + r2 + s) as u64;
        // m adds the shells on the branch with the most relay stations
        // (excluding the join): A and B when the B-branch is longer,
        // only A when the direct branch is.
        let (m, i) = if r1 + r2 >= s {
            (loop_relays + 2, (r1 + r2 - s) as u64)
        } else {
            (loop_relays + 1, (s - r1 - r2) as u64)
        };
        let expected = if i == 0 {
            Ratio::new(1, 1)
        } else {
            Ratio::new(m - i, m)
        };
        let measured = measure(&f.netlist).unwrap().system_throughput().unwrap();
        assert_eq!(measured, expected, "fork_join({r1},{r2},{s})");
    }
}

/// Fig. 2 / Carloni DAC'00: loops run at `S/(S+R)`.
#[test]
fn feedback_formula_holds() {
    for s in 1..=4usize {
        for r in 1..=4usize {
            let ring = generate::ring(s, r, RelayKind::Full);
            let measured = measure(&ring.netlist).unwrap().system_throughput().unwrap();
            assert_eq!(measured, loop_throughput(s, r), "ring({s},{r})");
            assert_eq!(
                closed_form(&ring.netlist),
                ClosedForm::Feedback {
                    s: s as u64,
                    r: r as u64
                }
            );
        }
    }
}

/// Trees: throughput 1; transient bounded by the longest path.
#[test]
fn tree_claims_hold() {
    for (depth, fanout, relays) in [(1usize, 2usize, 1usize), (2, 2, 2), (3, 1, 3)] {
        let t = generate::tree(depth, fanout, relays);
        let m = measure(&t.netlist).unwrap();
        assert_eq!(m.system_throughput(), Some(Ratio::new(1, 1)));
        let p = m.periodicity.unwrap();
        let longest = topology::longest_latency(&t.netlist).unwrap();
        assert!(
            p.transient <= longest + 1,
            "tree({depth},{fanout},{relays}): transient {} vs longest path {longest}",
            p.transient
        );
    }
}

/// "The slowest subtopology will force the system to slow down to its
/// speed. The protocol itself will adapt ... without any need for path
/// equalization."
#[test]
fn composition_is_bound_by_slowest_subtopology() {
    // Ring 1/(1+2) = 1/3 is slower than the fork-join front-end (4/6).
    let c = generate::composed(2, 1, 1, 2);
    let measured = measure(&c.netlist).unwrap().system_throughput().unwrap();
    assert_eq!(measured, Ratio::new(1, 3));

    // Flip dominance: fast ring, slow front-end.
    let c = generate::composed(3, 0, 2, 1);
    let measured = measure(&c.netlist).unwrap().system_throughput().unwrap();
    let predicted = predict_throughput(&c.netlist).unwrap();
    assert_eq!(measured, predicted);
    assert!(measured.to_f64() < 2.0 / 3.0 + 1e-9);
}

/// Path equalization restores `T = 1` on feed-forward systems.
#[test]
fn equalization_restores_unit_throughput() {
    for (r1, r2, s) in [(2usize, 1usize, 1usize), (3, 1, 0), (0, 2, 1)] {
        let mut f = generate::fork_join(r1, r2, s);
        let before = measure(&f.netlist).unwrap().system_throughput().unwrap();
        assert!(before.to_f64() < 1.0);
        equalize(&mut f.netlist).unwrap();
        let after = measure(&f.netlist).unwrap().system_throughput().unwrap();
        assert_eq!(after, Ratio::new(1, 1), "fork_join({r1},{r2},{s})");
    }
}

/// The protocol refinement (discarding stops over voids) never loses to
/// the Carloni-style baseline, and wins strictly somewhere.
#[test]
fn refined_variant_dominates_baseline() {
    let mut strict_win = false;
    let mut compared = 0;
    for seed in 0..30u64 {
        let (_, mut netlist) = generate::random_family(seed);
        if netlist.validate().is_err() {
            continue;
        }
        netlist.set_variant(ProtocolVariant::Refined);
        let Some(refined) = measure(&netlist).unwrap().system_throughput() else {
            continue;
        };
        netlist.set_variant(ProtocolVariant::Carloni);
        let Some(baseline) = measure(&netlist).unwrap().system_throughput() else {
            continue;
        };
        assert!(
            refined.to_f64() >= baseline.to_f64() - 1e-12,
            "seed {seed}: refined {refined} < baseline {baseline}"
        );
        if refined.to_f64() > baseline.to_f64() + 1e-12 {
            strict_win = true;
        }
        compared += 1;
    }
    assert!(compared >= 15, "compared only {compared} instances");
    assert!(strict_win, "the refinement must show a speedup somewhere");
}

/// The two stop disciplines change *timing only*: both variants deliver
/// the identical value stream at every sink (latency insensitivity is
/// variant-independent).
#[test]
fn variants_agree_on_data() {
    for seed in 0..25u64 {
        let (_, mut netlist) = generate::random_family(seed);
        if netlist.validate().is_err() {
            continue;
        }
        netlist.set_variant(ProtocolVariant::Refined);
        let mut a = System::new(&netlist).unwrap();
        netlist.set_variant(ProtocolVariant::Carloni);
        let mut b = System::new(&netlist).unwrap();
        a.run(120);
        b.run(120);
        for sink in netlist.sinks() {
            let sa = a.sink(sink).unwrap().received();
            let sb = b.sink(sink).unwrap().received();
            let n = sa.len().min(sb.len());
            assert_eq!(&sa[..n], &sb[..n], "seed {seed}: variants diverge on data");
        }
    }
}

/// Skeleton simulation is exact on valid/stop behaviour (the basis of
/// the "negligible cost" deadlock recipe).
#[test]
fn skeleton_control_behaviour_is_exact() {
    for seed in 40..70u64 {
        let (_, netlist) = generate::random_family(seed);
        if netlist.validate().is_err() {
            continue;
        }
        let mut full = System::new(&netlist).unwrap();
        let mut skel = SkeletonSystem::new(&netlist).unwrap();
        for _ in 0..40 {
            full.settle();
            skel.settle();
            assert_eq!(full.control_state(), skel.control_state());
            full.step();
            skel.step();
        }
    }
}

/// The transient is predictable upfront from shell/relay counts.
#[test]
fn transient_is_predictable_upfront() {
    for seed in 0..40u64 {
        let (fam, netlist) = generate::random_family(seed);
        if netlist.validate().is_err() {
            continue;
        }
        let bound = transient_bound(&netlist);
        let mut sys = System::new(&netlist).unwrap();
        if let Some(p) = find_periodicity(&mut sys, 100_000) {
            assert!(
                p.transient <= bound,
                "seed {seed} {fam:?}: {} > {bound}",
                p.transient
            );
        }
    }
}

/// The six SMV properties hold for the genuine blocks; the naive
/// one-register station (what minimum-memory forbids) is refuted.
#[test]
fn smv_properties_reproduced() {
    for row in verify_all(5) {
        assert!(row.as_expected(), "{}", row.block);
    }
    let v = explore(Dut::naive_one_reg(), 5);
    assert!(!v.holds);
}

/// Liveness statements: feed-forward and full-only LIDs never starve.
#[test]
fn liveness_statements_hold() {
    assert!(check_liveness(&generate::fig1().netlist, 5_000, 2_000)
        .unwrap()
        .is_live());
    assert!(
        check_liveness(&generate::tree(2, 2, 2).netlist, 5_000, 2_000)
            .unwrap()
            .is_live()
    );
    for (s, r) in [(1usize, 2usize), (2, 1), (3, 3)] {
        let ring = generate::ring(s, r, RelayKind::Full);
        assert!(
            check_liveness(&ring.netlist, 5_000, 2_000)
                .unwrap()
                .is_live(),
            "ring({s},{r})"
        );
    }
}
