//! End-to-end coverage of the extension features — buffered shells,
//! sized FIFO stations, queue sizing, wire pipelining and whole-system
//! equivalence — across the whole stack (netlist → analysis → all three
//! simulators → verification).

use lip::analysis::{pipeline_wires, predict_throughput, WireLatency};
use lip::graph::{generate, Netlist};
use lip::kernel::{CycleEngine, Engine};
use lip::protocol::pearl::{DelayPearl, IdentityPearl};
use lip::protocol::RelayKind;
use lip::sim::rtl::elaborate_rtl;
use lip::sim::{measure, Ratio, SkeletonSystem, System};
use lip::verify::check_latency_insensitivity;

/// FIFO stations flow at unit throughput in pipelines, whatever the
/// capacity, and preserve streams end to end across all simulators.
#[test]
fn fifo_pipelines_are_transparent_to_data() {
    for cap in 2u8..=5 {
        let mut n = Netlist::new();
        let src = n.add_source("in");
        let a = n.add_shell("a", IdentityPearl::new());
        let out = n.add_sink("out");
        n.connect(src, 0, a, 0).unwrap();
        n.connect_via_relays(a, 0, out, 0, 2, RelayKind::Fifo(cap))
            .unwrap();
        n.validate().unwrap();

        assert_eq!(predict_throughput(&n), Some(Ratio::new(1, 1)));
        let mut sys = System::new(&n).unwrap();
        sys.run(60);
        let got = sys.sink(out).unwrap().received();
        // a's initial 0, then the source stream 0,1,2,...
        assert_eq!(got[0], 0);
        for (i, v) in got[1..].iter().enumerate() {
            assert_eq!(*v, i as u64, "cap {cap}: {got:?}");
        }

        // Skeleton and RTL agree.
        let mut sk = SkeletonSystem::new(&n).unwrap();
        sk.run(60);
        assert_eq!(sk.sink_counts(out).unwrap().0 as usize, got.len());
        let (circuit, probes) = elaborate_rtl(&n).unwrap();
        let mut engine = CycleEngine::new(circuit);
        engine.run(60);
        assert_eq!(
            probes.read_sink_valid(&engine, out).unwrap() as usize,
            got.len()
        );
    }
}

/// Queue sizing on the Fig. 1 short branch: `T = min(1, (k+2)/5)`,
/// identical across model and all simulators.
#[test]
fn queue_sizing_formula_holds_everywhere() {
    for k in 2u8..=5 {
        let mut f = generate::fig1();
        f.netlist
            .set_relay_kind(f.short_relays[0], RelayKind::Fifo(k));
        let expected = Ratio::new(u64::from(k + 2).min(5), 5);
        assert_eq!(predict_throughput(&f.netlist), Some(expected), "cap {k}");
        assert_eq!(
            measure(&f.netlist).unwrap().system_throughput(),
            Some(expected),
            "cap {k}"
        );
    }
}

/// Buffered shells keep the whole protocol contract under environment
/// disturbances, matched against the memory-equivalent simplified
/// design: same streams under the same voidy source and stopping sink.
#[test]
fn buffered_and_simple_realisations_stay_equivalent_under_pressure() {
    use lip::protocol::Pattern;
    let void = Pattern::Cyclic(vec![false, false, true]);
    let stop = Pattern::Cyclic(vec![false, true, false, true, true]);

    let build = |buffered: bool| {
        let mut n = Netlist::new();
        let src = n.add_source_with_pattern("in", void.clone());
        let mut prev = (src, 0usize);
        for i in 0..3 {
            let sh = if buffered {
                n.add_buffered_shell(format!("s{i}"), IdentityPearl::new())
            } else {
                let sh = n.add_shell(format!("s{i}"), IdentityPearl::new());
                // Minimum-memory: a half station before each simple
                // shell mirrors the buffered shell's input register.
                let relays = n
                    .connect_via_relays(prev.0, prev.1, sh, 0, 1, RelayKind::Half)
                    .unwrap();
                assert_eq!(relays.len(), 1);
                prev = (sh, 0);
                continue;
            };
            n.connect(prev.0, prev.1, sh, 0).unwrap();
            prev = (sh, 0);
        }
        let out = n.add_sink_with_pattern("out", stop.clone());
        n.connect(prev.0, prev.1, out, 0).unwrap();
        n.validate().unwrap();
        (n, out)
    };

    let (simple, s_out) = build(false);
    let (buffered, b_out) = build(true);
    let mut a = System::new(&simple).unwrap();
    let mut b = System::new(&buffered).unwrap();
    a.run(300);
    b.run(300);
    let sa = a.sink(s_out).unwrap();
    let sb = b.sink(b_out).unwrap();
    assert_eq!(sa.received(), sb.received());
    assert_eq!(sa.voids_seen(), sb.voids_seen());
}

/// A pearl with an internal pipeline (DelayPearl) stays latency
/// insensitive: relay insertion changes nothing about its output stream.
#[test]
fn internally_pipelined_pearls_are_latency_insensitive() {
    let build = |relays: usize| {
        let mut n = Netlist::new();
        let src = n.add_source("in");
        let a = n.add_shell("dsp", DelayPearl::new(3));
        let out = n.add_sink("out");
        n.connect(src, 0, a, 0).unwrap();
        if relays == 0 {
            n.connect(a, 0, out, 0).unwrap();
        } else {
            n.connect_via_relays(a, 0, out, 0, relays, RelayKind::Full)
                .unwrap();
        }
        (n, out)
    };
    let (reference, r_out) = build(0);
    let (pipelined, p_out) = build(3);
    let mut a = System::new(&reference).unwrap();
    let mut b = System::new(&pipelined).unwrap();
    a.run(100);
    b.run(100);
    let ra = a.sink(r_out).unwrap().received();
    let rb = b.sink(p_out).unwrap().received();
    assert_eq!(&ra[..rb.len()], rb);
}

/// The wire-pipelining pass composes with equivalence checking: any
/// annotation assignment leaves the design equivalent to its reference.
#[test]
fn wire_pipelining_preserves_latency_insensitivity() {
    for (l1, l2, l3) in [(0u64, 2u64, 1u64), (3, 0, 0), (1, 1, 1), (4, 2, 3)] {
        let mut n = Netlist::new();
        let src = n.add_source("in");
        let a = n.add_shell("a", IdentityPearl::with_fanout(2));
        let b = n.add_shell("b", IdentityPearl::new());
        let c = n.add_shell("c", lip::protocol::pearl::JoinPearl::sum(2));
        let out = n.add_sink("out");
        n.connect(src, 0, a, 0).unwrap();
        let ch1 = n.connect(a, 0, b, 0).unwrap();
        let ch2 = n.connect(a, 1, c, 1).unwrap();
        let ch3 = n.connect(b, 0, c, 0).unwrap();
        n.connect(c, 0, out, 0).unwrap();
        pipeline_wires(
            &mut n,
            &[
                WireLatency {
                    channel: ch1,
                    cycles: l1,
                },
                WireLatency {
                    channel: ch2,
                    cycles: l2,
                },
                WireLatency {
                    channel: ch3,
                    cycles: l3,
                },
            ],
        );
        n.validate().unwrap();
        let report = check_latency_insensitivity(&n, 150).unwrap();
        assert!(report.holds(), "({l1},{l2},{l3}): {:?}", report.mismatch);
    }
}

/// Fifo rings appear in the random corpus and behave per the model.
#[test]
fn fifo_rings_in_corpus_match_model() {
    let mut found = 0;
    for seed in 0..200u64 {
        let (fam, netlist) = generate::random_family(seed);
        if fam != generate::Family::FifoRing || netlist.validate().is_err() {
            continue;
        }
        let predicted = predict_throughput(&netlist).unwrap();
        let measured = measure(&netlist).unwrap().system_throughput().unwrap();
        assert_eq!(predicted, measured, "seed {seed}");
        found += 1;
    }
    assert!(found >= 10, "only {found} fifo rings in corpus");
}
