//! `lip-cli` — inspect, analyse, simulate and verify latency-insensitive
//! designs from the command line.
//!
//! ```text
//! lip-cli analyze  <family>              structure, closed form, prediction
//! lip-cli simulate <family> [cycles]     measured throughput & periodicity
//! lip-cli evolution <family> [cycles]    Fig. 1/2-style evolution table
//! lip-cli liveness <family>              skeleton liveness + cure
//! lip-cli verify [depth]                 the six SMV properties
//! lip-cli dot <family>                   Graphviz export to stdout
//! ```
//!
//! `<family>` is a compact spec:
//!
//! ```text
//! fig1                      the paper's Fig. 1 instance
//! fig2                      the paper's Fig. 2 instance (ring 2,1)
//! chain:S,R[,half]          S shells, R relays per wire
//! ring:S,R[,half]           loop of S shells, R relays
//! fork-join:R1,R2,S         Fig. 1 family with explicit relay counts
//! tree:DEPTH,FANOUT,R       fanout tree
//! composed:R1,R2,S,RS,RR    coupled fork-join -> ring
//! buffered-ring:S,R         loop of buffered shells
//! path/to/design.lid        a textual netlist file (see lip_graph::text)
//! ```

use lip::analysis::{closed_form, predict_throughput, transient_bound, MarkedGraph};
use lip::graph::{generate, topology, Netlist, NodeId};
use lip::protocol::RelayKind;
use lip::sim::measure::check_liveness;
use lip::sim::{measure, Evolution};
use lip::verify::verify_all;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = run(&args.iter().map(String::as_str).collect::<Vec<_>>());
    std::process::exit(code);
}

fn run(args: &[&str]) -> i32 {
    match args {
        ["analyze", spec] => with_family(spec, analyze),
        ["simulate", spec] => with_family(spec, |f| simulate(f, 0)),
        ["simulate", spec, cycles] => match cycles.parse() {
            Ok(c) => with_family(spec, |f| simulate(f, c)),
            Err(_) => usage("cycles must be a number"),
        },
        ["evolution", spec] => with_family(spec, |f| evolution(f, 20)),
        ["evolution", spec, cycles] => match cycles.parse() {
            Ok(c) => with_family(spec, |f| evolution(f, c)),
            Err(_) => usage("cycles must be a number"),
        },
        ["liveness", spec] => with_family(spec, liveness),
        ["dot", spec] => with_family(spec, |f| {
            print!("{}", f.netlist.to_dot());
            0
        }),
        ["verify"] => verify(6),
        ["verify", depth] => match depth.parse() {
            Ok(d) => verify(d),
            Err(_) => usage("depth must be a number"),
        },
        _ => usage("unknown command"),
    }
}

fn usage(err: &str) -> i32 {
    eprintln!("error: {err}");
    eprintln!(
        "usage: lip-cli <analyze|simulate|evolution|liveness> <family> [cycles]\n       lip-cli verify [depth]\n\nfamilies: fig1 | fig2 | chain:S,R[,half] | ring:S,R[,half] |\n          fork-join:R1,R2,S | tree:D,F,R | composed:R1,R2,S,RS,RR |\n          buffered-ring:S,R"
    );
    2
}

/// A parsed family: the netlist plus the shells worth displaying.
struct FamilyInstance {
    name: String,
    netlist: Netlist,
    display_nodes: Vec<NodeId>,
}

fn with_family(spec: &str, f: impl FnOnce(FamilyInstance) -> i32) -> i32 {
    match parse_family(spec) {
        Ok(fam) => f(fam),
        Err(e) => usage(&e),
    }
}

fn parse_family(spec: &str) -> Result<FamilyInstance, String> {
    // A netlist file beats the built-in families.
    if spec.ends_with(".lid") || std::path::Path::new(spec).is_file() {
        let text =
            std::fs::read_to_string(spec).map_err(|e| format!("cannot read `{spec}`: {e}"))?;
        let (netlist, _names) =
            lip::graph::parse_netlist(&text).map_err(|e| format!("{spec}: {e}"))?;
        let display_nodes = netlist.shells();
        return Ok(FamilyInstance {
            name: spec.to_owned(),
            netlist,
            display_nodes,
        });
    }
    let (head, tail) = match spec.split_once(':') {
        Some((h, t)) => (h, t),
        None => (spec, ""),
    };
    let nums: Vec<usize> = tail
        .split(',')
        .filter(|s| !s.is_empty() && *s != "half" && *s != "full")
        .map(|s| {
            s.parse()
                .map_err(|_| format!("bad number `{s}` in `{spec}`"))
        })
        .collect::<Result<_, _>>()?;
    let kind = if tail.ends_with("half") {
        RelayKind::Half
    } else {
        RelayKind::Full
    };
    let need = |n: usize| -> Result<(), String> {
        if nums.len() == n {
            Ok(())
        } else {
            Err(format!(
                "`{head}` needs {n} numeric parameters, got {}",
                nums.len()
            ))
        }
    };
    let inst = match head {
        "fig1" => {
            let f = generate::fig1();
            FamilyInstance {
                name: "fig1".into(),
                display_nodes: vec![f.fork, f.mid, f.join],
                netlist: f.netlist,
            }
        }
        "fig2" => {
            let r = generate::ring(2, 1, RelayKind::Full);
            FamilyInstance {
                name: "fig2".into(),
                display_nodes: r.shells.clone(),
                netlist: r.netlist,
            }
        }
        "chain" => {
            need(2)?;
            let c = generate::chain(nums[0], nums[1], kind);
            FamilyInstance {
                name: format!("chain {nums:?} {kind}"),
                display_nodes: c.shells.clone(),
                netlist: c.netlist,
            }
        }
        "ring" => {
            need(2)?;
            let r = generate::ring(nums[0], nums[1], kind);
            FamilyInstance {
                name: format!("ring {nums:?} {kind}"),
                display_nodes: r.shells.clone(),
                netlist: r.netlist,
            }
        }
        "fork-join" => {
            need(3)?;
            let f = generate::fork_join(nums[0], nums[1], nums[2]);
            FamilyInstance {
                name: format!("fork-join {nums:?}"),
                display_nodes: vec![f.fork, f.mid, f.join],
                netlist: f.netlist,
            }
        }
        "tree" => {
            need(3)?;
            let t = generate::tree(nums[0], nums[1], nums[2]);
            let shells = t.netlist.shells();
            FamilyInstance {
                name: format!("tree {nums:?}"),
                display_nodes: shells,
                netlist: t.netlist,
            }
        }
        "composed" => {
            need(5)?;
            let c = generate::composed_coupled(nums[0], nums[1], nums[2], nums[3], nums[4]);
            FamilyInstance {
                name: format!("composed {nums:?}"),
                display_nodes: vec![c.fork, c.join, c.entry],
                netlist: c.netlist,
            }
        }
        "buffered-ring" => {
            need(2)?;
            let r = generate::buffered_ring(nums[0], nums[1]);
            FamilyInstance {
                name: format!("buffered-ring {nums:?}"),
                display_nodes: r.shells.clone(),
                netlist: r.netlist,
            }
        }
        other => return Err(format!("unknown family `{other}`")),
    };
    Ok(inst)
}

fn analyze(f: FamilyInstance) -> i32 {
    println!("family:        {}", f.name);
    println!("netlist:       {}", f.netlist);
    match f.netlist.validate() {
        Ok(()) => println!("validation:    ok"),
        Err(e) => {
            println!("validation:    FAILED — {e}");
            return 1;
        }
    }
    println!("topology:      {}", topology::classify(&f.netlist));
    println!("closed form:   {:?}", closed_form(&f.netlist));
    match predict_throughput(&f.netlist) {
        Some(t) => println!("predicted T:   {t} ({:.4})", t.to_f64()),
        None => println!("predicted T:   n/a (aperiodic environment)"),
    }
    println!("transient <=   {} cycles", transient_bound(&f.netlist));
    match MarkedGraph::new(&f.netlist).binding_cycle() {
        Some((cycle, ratio)) => {
            let path: Vec<String> = cycle
                .iter()
                .map(|e| f.netlist.node(e.from).name().to_owned())
                .collect();
            println!("bottleneck:    {} @ {}", path.join(" -> "), ratio);
        }
        None => println!("bottleneck:    none (full rate)"),
    }
    0
}

fn simulate(f: FamilyInstance, _cycles: u64) -> i32 {
    if let Err(e) = f.netlist.validate() {
        println!("validation FAILED — {e}");
        return 1;
    }
    let m = measure(&f.netlist).expect("validated");
    match m.periodicity {
        Some(p) => println!(
            "periodic: transient {} cycles, period {}",
            p.transient, p.period
        ),
        None => println!("no periodicity detected (aperiodic environment?)"),
    }
    for s in &m.sinks {
        println!(
            "sink {}: T = {} ({:.4})",
            f.netlist.node(s.sink).name(),
            s.throughput,
            s.throughput.to_f64()
        );
    }
    match m.system_throughput() {
        Some(t) => println!("system throughput: {t}"),
        None => println!("system throughput: n/a"),
    }
    0
}

fn evolution(f: FamilyInstance, cycles: u64) -> i32 {
    if let Err(e) = f.netlist.validate() {
        println!("validation FAILED — {e}");
        return 1;
    }
    let ev = Evolution::record(&f.netlist, &f.display_nodes, cycles).expect("validated");
    println!("{ev}");
    0
}

fn liveness(f: FamilyInstance) -> i32 {
    if let Err(e) = f.netlist.validate() {
        println!("validation FAILED — {e}");
        return 1;
    }
    let report = check_liveness(&f.netlist, 20_000, 5_000).expect("validated");
    if report.is_live() {
        println!("live: every shell keeps firing");
        0
    } else {
        println!("STARVED shells:");
        for s in &report.dead_shells {
            println!("  {} ({})", s, f.netlist.node(*s).name());
        }
        let mut cured = f.netlist.clone();
        let cure = lip::analysis::cure_deadlocks(&mut cured, 20_000, 5_000).expect("validated");
        println!(
            "cure: substituted {} station(s); live after cure: {}",
            cure.substituted.len(),
            cure.is_live()
        );
        1
    }
}

fn verify(depth: u64) -> i32 {
    let mut failures = 0;
    for row in verify_all(depth) {
        let status = if row.verdict.holds {
            "SAFE"
        } else {
            "VIOLATED"
        };
        let expected = if row.as_expected() {
            ""
        } else {
            "  <-- UNEXPECTED"
        };
        println!("{:<42} {status}{expected}", row.block);
        if !row.as_expected() {
            failures += 1;
        }
    }
    i32::from(failures > 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_family() {
        for spec in [
            "fig1",
            "fig2",
            "chain:2,1",
            "chain:2,1,half",
            "ring:2,1",
            "ring:3,2,half",
            "fork-join:1,1,1",
            "tree:2,2,1",
            "composed:1,1,1,2,1",
            "buffered-ring:3,0",
        ] {
            let f = parse_family(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert!(f.netlist.node_count() > 0, "{spec}");
        }
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(parse_family("nope").is_err());
        assert!(parse_family("ring:2").is_err());
        assert!(parse_family("ring:a,b").is_err());
    }

    #[test]
    fn loads_netlist_files() {
        let dir = std::env::temp_dir().join("lip_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mini.lid");
        std::fs::write(
            &path,
            "source in\nshell a identity\nsink out\nconnect in:0 -> a:0\nconnect a:0 -> out:0\n",
        )
        .unwrap();
        let spec = path.to_str().unwrap().to_owned();
        let f = parse_family(&spec).unwrap();
        assert_eq!(f.netlist.census().shells, 1);
        assert_eq!(run(&["analyze", &spec]), 0);
    }

    #[test]
    fn commands_run() {
        assert_eq!(run(&["analyze", "fig1"]), 0);
        assert_eq!(run(&["simulate", "fig2"]), 0);
        assert_eq!(run(&["evolution", "fig1", "8"]), 0);
        assert_eq!(run(&["liveness", "ring:2,1"]), 0);
        assert_eq!(run(&["dot", "fig2"]), 0);
        assert_eq!(run(&["bogus"]), 2);
    }
}
