//! Reproduce the paper's Fig. 2: the feedback topology, its evolution,
//! and the `T = S/(S+R)` loop throughput.
//!
//! Run with: `cargo run --example fig2_feedback`

use lip::analysis::{closed_form, loop_throughput};
use lip::graph::generate;
use lip::protocol::RelayKind;
use lip::sim::{measure, Evolution};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fig. 2: a loop of S = 2 shells (A, B) and R = 1 relay station.
    let fig2 = generate::ring(2, 1, RelayKind::Full);
    println!("Fig. 2 topology: {}", fig2.netlist);
    println!();

    // Evolution: at most S = 2 informative tokens circulate over the
    // S + R = 3 loop positions; voids rotate with them.
    let nodes = [fig2.shells[0], fig2.shells[1], fig2.relays[0]];
    let ev = Evolution::record(&fig2.netlist, &nodes, 15)?;
    println!("{ev}");

    let cf = closed_form(&fig2.netlist);
    println!("closed form: {cf:?} -> T = {}", cf.throughput());
    let measured = measure(&fig2.netlist)?
        .system_throughput()
        .expect("measured");
    println!("measured:   T = {measured}");
    assert_eq!(measured, loop_throughput(2, 1));
    println!();

    // Sweep the family: the formula holds for every (S, R).
    println!("{:>3} {:>3} {:>9} {:>9}", "S", "R", "formula", "measured");
    for s in 1..=4usize {
        for r in 0..=4usize {
            let ring = generate::ring(s, r, RelayKind::Full);
            if ring.netlist.validate().is_err() {
                continue; // S-only loops need a relay station
            }
            let formula = loop_throughput(s, r);
            let measured = measure(&ring.netlist)?
                .system_throughput()
                .expect("measured");
            assert_eq!(formula, measured);
            println!("{s:>3} {r:>3} {formula:>9} {measured:>9}");
        }
    }
    println!(
        "\npaper: \"this justifies the number S/(S+R) for the maximum throughput\" -> reproduced"
    );
    Ok(())
}
