//! A System-on-Chip scenario — the paper's motivation: "the performance
//! of future Systems-on-Chip will be limited by the latency of long
//! interconnects requiring more than one clock cycle".
//!
//! A DSP datapath (splitter, two filter banks of different physical
//! distance, a mixer, a post-processor) is floorplanned so that its
//! wires need 0–3 clock cycles. We wrap the modules in shells, pipeline
//! each wire with as many relay stations as it needs, measure the
//! throughput hit caused by the unbalanced fork, and recover full rate
//! with the paper's path equalization.
//!
//! Run with: `cargo run --example soc_pipeline`

use lip::analysis::{equalize, predict_throughput, transient_bound};
use lip::graph::{topology, Netlist};
use lip::protocol::pearl::{FnPearl, IdentityPearl, JoinPearl};
use lip::protocol::RelayKind;
use lip::sim::{measure, System};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut n = Netlist::new();
    let adc = n.add_source("adc");
    // The splitter fans the sample stream to both filter banks.
    let split = n.add_shell("split", IdentityPearl::with_fanout(2));
    // Filter banks: a cheap IIR-ish update and a scaler.
    let fir = n.add_shell(
        "fir",
        FnPearl::new("fir", 1, 1, |i, o| o[0] = i[0].wrapping_mul(3) / 4),
    );
    let eq = n.add_shell(
        "eq",
        FnPearl::new("eq", 1, 1, |i, o| o[0] = i[0].wrapping_add(7)),
    );
    let mix = n.add_shell("mix", JoinPearl::sum(2));
    let post = n.add_shell("post", IdentityPearl::new());
    let dac = n.add_sink("dac");

    // Floorplan: wire latencies in clock cycles.
    n.connect(adc, 0, split, 0)?;
    n.connect_via_relays(split, 0, fir, 0, 3, RelayKind::Full)?; // far corner
    n.connect_via_relays(split, 1, eq, 0, 1, RelayKind::Full)?; // nearby
    n.connect_via_relays(fir, 0, mix, 0, 1, RelayKind::Full)?;
    n.connect_via_relays(eq, 0, mix, 1, 1, RelayKind::Full)?;
    // mix and post are abutted: a half relay station satisfies the
    // minimum-memory rule at zero latency cost.
    n.connect_via_relays(mix, 0, post, 0, 1, RelayKind::Half)?;
    n.connect(post, 0, dac, 0)?;
    n.validate()?;

    println!("SoC netlist: {n}");
    println!("topology: {}", topology::classify(&n));
    println!("predicted transient bound: {} cycles", transient_bound(&n));

    let predicted = predict_throughput(&n).expect("periodic environment");
    let m = measure(&n)?;
    let measured = m.system_throughput().expect("measured");
    println!("\nbefore equalization: predicted T = {predicted}, measured T = {measured}");
    assert_eq!(predicted, measured);

    // The 2-relay imbalance between the fir and eq paths costs
    // throughput. Equalize with spare relay stations.
    let report = equalize(&mut n)?;
    println!(
        "path equalization inserted {} spare relay station(s)",
        report.total_inserted()
    );
    let m = measure(&n)?;
    let after = m.system_throughput().expect("measured");
    println!("after equalization:  measured T = {after}");
    assert_eq!(after.to_string(), "1/1");

    // Functional check: the DAC stream equals the zero-latency
    // reference design's (same modules, no relay stations) — the
    // protocol's "identity of behavior" guarantee.
    let mut sys = System::new(&n)?;
    sys.run(96);
    let received = sys.sink(dac).expect("sink").received().to_vec();
    assert!(!received.is_empty());

    let reference = build_reference()?;
    let mut ref_sys = System::new(&reference.0)?;
    ref_sys.run(96);
    let ref_stream = ref_sys.sink(reference.1).expect("sink").received();
    assert_eq!(&received[..], &ref_stream[..received.len()]);
    println!(
        "\nfunctional check: {} DAC samples match the zero-latency reference exactly",
        received.len()
    );
    println!("latency insensitivity: pipelining + equalization changed timing only");
    Ok(())
}

/// The same datapath with zero-latency wires (no relay stations).
fn build_reference() -> Result<(Netlist, lip::graph::NodeId), lip::graph::NetlistError> {
    let mut n = Netlist::new();
    let adc = n.add_source("adc");
    let split = n.add_shell("split", IdentityPearl::with_fanout(2));
    let fir = n.add_shell(
        "fir",
        FnPearl::new("fir", 1, 1, |i, o| o[0] = i[0].wrapping_mul(3) / 4),
    );
    let eq = n.add_shell(
        "eq",
        FnPearl::new("eq", 1, 1, |i, o| o[0] = i[0].wrapping_add(7)),
    );
    let mix = n.add_shell("mix", JoinPearl::sum(2));
    let post = n.add_shell("post", IdentityPearl::new());
    let dac = n.add_sink("dac");
    n.connect(adc, 0, split, 0)?;
    n.connect(split, 0, fir, 0)?;
    n.connect(split, 1, eq, 0)?;
    n.connect(fir, 0, mix, 0)?;
    n.connect(eq, 0, mix, 1)?;
    n.connect(mix, 0, post, 0)?;
    n.connect(post, 0, dac, 0)?;
    Ok((n, dac))
}
