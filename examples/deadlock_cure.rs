//! The paper's deadlock analysis in action: half relay stations in
//! loops are the only deadlock risk; skeleton simulation up to the
//! transient decides each instance; substituting a few stations cures
//! the injectors.
//!
//! Run with: `cargo run --example deadlock_cure`

use lip::analysis::{cure_deadlocks, half_relays_in_loops};
use lip::graph::generate;
use lip::protocol::{Pattern, RelayKind};
use lip::sim::measure::check_liveness;
use lip::verify::liveness::{liveness_class, theorem_sweep};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The three theorem classes on representative instances.
    println!("== liveness classes ==");
    for (name, netlist) in [
        ("Fig. 1 fork-join (feed-forward)", generate::fig1().netlist),
        (
            "ring S=2 R=2, full stations",
            generate::ring(2, 2, RelayKind::Full).netlist,
        ),
        (
            "ring S=2 R=2, half stations",
            generate::ring(2, 2, RelayKind::Half).netlist,
        ),
    ] {
        let class = liveness_class(&netlist);
        let live = check_liveness(&netlist, 10_000, 5_000)?.is_live();
        println!("{name:<38} class: {class:<40} live: {live}");
    }

    // 2. A disturbed half-station loop: external stop bursts squeeze the
    //    loop; skeleton simulation to the transient decides liveness.
    println!("\n== skeleton-based decision + cure ==");
    let ring = generate::ring_with_entry(
        2,
        2,
        RelayKind::Half,
        Pattern::Never,
        Pattern::Cyclic(vec![true, true, false]),
    );
    let mut netlist = ring.netlist;
    let suspects = half_relays_in_loops(&netlist);
    println!(
        "half relay stations in loops (deadlock suspects): {}",
        suspects.len()
    );
    let before = check_liveness(&netlist, 10_000, 5_000)?;
    println!(
        "before cure: live = {} (dead shells: {})",
        before.is_live(),
        before.dead_shells.len()
    );
    let report = cure_deadlocks(&mut netlist, 10_000, 5_000)?;
    println!(
        "cure substituted {} half station(s) with full ones; live = {}",
        report.substituted.len(),
        report.is_live()
    );
    netlist.validate()?;

    // 3. The corpus sweep: every instance must be consistent with the
    //    paper's statements.
    println!("\n== theorem sweep over the corpus ==");
    let cases = theorem_sweep(40)?;
    let mut by_class = std::collections::BTreeMap::new();
    for case in &cases {
        assert!(
            case.consistent,
            "{}: contradicts the paper",
            case.description
        );
        let e = by_class
            .entry(format!("{}", case.class))
            .or_insert((0u32, 0u32));
        e.0 += 1;
        if case.live {
            e.1 += 1;
        }
    }
    println!("{:<45} {:>6} {:>6}", "class", "cases", "live");
    for (class, (cases, live)) in &by_class {
        println!("{class:<45} {cases:>6} {live:>6}");
    }
    println!(
        "\nall {} instances consistent with the paper's three statements",
        cases.len()
    );
    Ok(())
}
