//! Re-run the paper's SMV verification: the three shell properties and
//! three relay-station properties, under all appropriate environments —
//! plus two mutants showing what the explorer catches.
//!
//! Run with: `cargo run --example verify_protocol`

use lip::verify::verify_all;

fn main() {
    println!("exhaustive exploration, environments emitting up to 6 tokens per input\n");
    println!(
        "{:<38} {:>8} {:>12}  {:<8} properties",
        "block", "states", "transitions", "verdict"
    );
    let rows = verify_all(6);
    for row in &rows {
        let verdict = if row.verdict.holds {
            "SAFE"
        } else {
            "VIOLATED"
        };
        println!(
            "{:<38} {:>8} {:>12}  {:<8} {}",
            row.block, row.verdict.states, row.verdict.transitions, verdict, row.properties
        );
        assert!(
            row.as_expected(),
            "{} did not verify as expected",
            row.block
        );
        if let Some(v) = &row.verdict.violation {
            println!(
                "    counterexample ({} steps): {v}",
                row.verdict.counterexample.len()
            );
        }
    }
    println!("\nall genuine blocks SAFE; both mutants caught with counterexamples");
    println!("(the naive one-register station is exactly the design the paper's");
    println!(" minimum-memory analysis rules out: it drops the in-flight token");
    println!(" during the registered-stop lag)");
}
