//! Dump a VCD waveform of the Fig. 1 system, as one would inspect in a
//! wave viewer — the RTL-on-kernel path end to end: netlist → RTL
//! elaboration → cycle engine → trace → `fig1.vcd` — plus the same
//! run's protocol events as `fig1_events.jsonl` via the observability
//! layer's trace replay.
//!
//! Run with: `cargo run --example waveform_vcd`
//! Then open `target/fig1.vcd` in GTKWave (or any VCD viewer), and
//! `target/fig1_events.jsonl` with jq or any log tool.

use std::fs;

use lip::graph::generate;
use lip::kernel::{CycleEngine, Engine};
use lip::obs::{EventStreamProbe, JsonlSink};
use lip::sim::rtl::{elaborate_rtl, replay_trace_events};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fig1 = generate::fig1();
    let (circuit, probes) = elaborate_rtl(&fig1.netlist)?;
    println!(
        "RTL elaboration: {} signals, {} processes",
        circuit.signal_count(),
        circuit.process_count()
    );

    let mut engine = CycleEngine::new(circuit);
    engine.enable_trace();
    engine.run(30);

    let valid = probes
        .read_sink_valid(&engine, fig1.sink)
        .expect("sink probe");
    let voids = probes
        .read_sink_voids(&engine, fig1.sink)
        .expect("sink probe");
    println!("30 cycles: {valid} informative tokens, {voids} voids at the output");

    let vcd = engine
        .trace()
        .expect("tracing enabled")
        .to_vcd(engine.circuit());
    let path = "target/fig1.vcd";
    fs::create_dir_all("target")?;
    fs::write(path, &vcd)?;
    println!("wrote {path} ({} bytes)", vcd.len());
    println!("look for the `c*_valid` / `c*_stop` channel signals: the stop pulse");
    println!("climbing the short branch every 5 cycles is the paper's Fig. 1");

    // Sanity: the waveform really contains periodic stop activity.
    let stop_lines = vcd.lines().filter(|l| l.contains("_stop")).count();
    assert!(stop_lines >= 1, "stop signals missing from the VCD header");

    // The same waveform as a structured event stream: replay the trace
    // through the observability layer and dump one JSON object per
    // stall/void event.
    let mut probe = EventStreamProbe::new(JsonlSink::new(Vec::new()));
    replay_trace_events(
        engine.trace().expect("tracing enabled"),
        &probes,
        &mut probe,
    );
    let mut sink = probe.into_sink();
    if let Some(e) = sink.take_error() {
        return Err(e.into());
    }
    let events = sink.written();
    let jsonl = sink.finish()?;
    let events_path = "target/fig1_events.jsonl";
    fs::write(events_path, &jsonl)?;
    println!("wrote {events_path} ({events} events)");
    assert!(events > 0, "Fig. 1 produces stall events every period");
    Ok(())
}
