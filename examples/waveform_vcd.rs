//! Dump a VCD waveform of the Fig. 1 system, as one would inspect in a
//! wave viewer — the RTL-on-kernel path end to end: netlist → RTL
//! elaboration → cycle engine → trace → `fig1.vcd` — plus the same
//! run's protocol events as `fig1_events.jsonl` via the observability
//! layer's trace replay, and the causal profiler's Chrome trace as
//! `fig1_trace.json`.
//!
//! Run with: `cargo run --example waveform_vcd`
//! Then open `target/fig1.vcd` in GTKWave (or any VCD viewer),
//! `target/fig1_events.jsonl` with jq or any log tool, and
//! `target/fig1_trace.json` in `chrome://tracing` or Perfetto.

use std::fs;

use lip::graph::generate;
use lip::kernel::{CycleEngine, Engine};
use lip::obs::{EventStreamProbe, JsonlSink};
use lip::sim::rtl::{elaborate_rtl, replay_trace_events};
use lip::sim::{profile_netlist, ProfileOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fig1 = generate::fig1();
    let (circuit, probes) = elaborate_rtl(&fig1.netlist)?;
    println!(
        "RTL elaboration: {} signals, {} processes",
        circuit.signal_count(),
        circuit.process_count()
    );

    let mut engine = CycleEngine::new(circuit);
    engine.enable_trace();
    engine.run(30);

    let valid = probes
        .read_sink_valid(&engine, fig1.sink)
        .expect("sink probe");
    let voids = probes
        .read_sink_voids(&engine, fig1.sink)
        .expect("sink probe");
    println!("30 cycles: {valid} informative tokens, {voids} voids at the output");

    let vcd = engine
        .trace()
        .expect("tracing enabled")
        .to_vcd(engine.circuit());
    let path = "target/fig1.vcd";
    fs::create_dir_all("target")?;
    fs::write(path, &vcd)?;
    println!("wrote {path} ({} bytes)", vcd.len());
    println!("look for the `c*_valid` / `c*_stop` channel signals: the stop pulse");
    println!("climbing the short branch every 5 cycles is the paper's Fig. 1");

    // Sanity: the waveform really contains periodic stop activity.
    let stop_lines = vcd.lines().filter(|l| l.contains("_stop")).count();
    assert!(stop_lines >= 1, "stop signals missing from the VCD header");

    // The same waveform as a structured event stream: replay the trace
    // through the observability layer and dump one JSON object per
    // stall/void event.
    let mut probe = EventStreamProbe::new(JsonlSink::new(Vec::new()));
    replay_trace_events(
        engine.trace().expect("tracing enabled"),
        &probes,
        &mut probe,
    );
    let mut sink = probe.into_sink();
    if let Some(e) = sink.take_error() {
        return Err(e.into());
    }
    let events = sink.written();
    let jsonl = sink.finish()?;
    let events_path = "target/fig1_events.jsonl";
    fs::write(events_path, &jsonl)?;
    println!("wrote {events_path} ({events} events)");
    assert!(events > 0, "Fig. 1 produces stall events every period");

    // And the *causal* view of the same design: the replayed RTL stream
    // above carries stall/void events but no consume/emit records, so
    // the profiler runs the identical netlist on the skeleton engine
    // (proven event-equivalent by the obs_fig1 suite) over an exact
    // steady-state window, then renders token spans and stall slices as
    // Chrome-trace JSON.
    let profiled = profile_netlist(&fig1.netlist, ProfileOptions::default())?;
    let trace_path = "target/fig1_trace.json";
    fs::write(trace_path, &profiled.trace_json)?;
    println!(
        "wrote {trace_path} ({} bytes): open in chrome://tracing or Perfetto;",
        profiled.trace_json.len()
    );
    println!(
        "the short-branch relay is blamed for {} of {} cycles (1 in 5)",
        profiled
            .report
            .blame_of_node(fig1.short_relays[0].index() as u32),
        profiled.window
    );
    Ok(())
}
