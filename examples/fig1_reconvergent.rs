//! Reproduce the paper's Fig. 1: the reconvergent feed-forward topology,
//! its cycle-by-cycle evolution, and the `T = (m − i)/m = 4/5`
//! throughput.
//!
//! Run with: `cargo run --example fig1_reconvergent`

use lip::analysis::{closed_form, predict_throughput};
use lip::graph::generate;
use lip::sim::{measure, Evolution};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fig. 1: fork A; long branch A -> RS -> B -> RS -> C; short branch
    // A -> RS -> C. Relay imbalance i = 1.
    let fig1 = generate::fig1();
    println!("Fig. 1 topology: {}", fig1.netlist);
    println!();

    // The evolution table — compare with the frames of Fig. 1: voids
    // (`n`) flow down the long branch, and every 5th cycle a stop (`*`)
    // climbs the short branch while the output utters a void.
    let ev = Evolution::record(&fig1.netlist, &[fig1.fork, fig1.mid, fig1.join], 20)?;
    println!("{ev}");

    // The closed form.
    let cf = closed_form(&fig1.netlist);
    println!("closed form: {cf:?} -> T = {}", cf.throughput());

    // The marked-graph prediction and the measurement agree exactly.
    let predicted = predict_throughput(&fig1.netlist).expect("periodic environment");
    let m = measure(&fig1.netlist)?;
    let measured = m.system_throughput().expect("measured");
    let p = m.periodicity.expect("periodic");
    println!("predicted T = {predicted}");
    println!(
        "measured  T = {measured}   (period {} cycles, transient {})",
        p.period, p.transient
    );
    assert_eq!(predicted, measured);
    assert_eq!(measured.to_string(), "4/5");
    assert_eq!(p.period, 5);
    println!();
    println!("paper: \"the output utters an invalid datum every 5 cycles\" -> reproduced");
    Ok(())
}
