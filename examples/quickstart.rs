//! Quickstart: wrap a tiny design in the latency-insensitive protocol,
//! pipeline a long wire, and watch it behave exactly like the original.
//!
//! Run with: `cargo run --example quickstart`

use lip::graph::Netlist;
use lip::protocol::pearl::{AccumulatorPearl, IdentityPearl};
use lip::protocol::RelayKind;
use lip::sim::{measure, System};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A producer shell feeding an accumulator shell over a wire too long
    // for one clock period: the physical designer drops in two full
    // relay stations to pipeline it.
    let mut n = Netlist::new();
    let src = n.add_source("stimulus");
    let stage1 = n.add_shell("stage1", IdentityPearl::new());
    let stage2 = n.add_shell("stage2", AccumulatorPearl::new());
    let out = n.add_sink("result");

    n.connect(src, 0, stage1, 0)?;
    // stage1 -> [RS] -> [RS] -> stage2: a two-cycle wire.
    n.connect_via_relays(stage1, 0, stage2, 0, 2, RelayKind::Full)?;
    n.connect(stage2, 0, out, 0)?;
    n.validate()?;

    println!("netlist: {n}");

    // Simulate 100 cycles.
    let mut sys = System::new(&n)?;
    sys.run(100);
    let sink = sys.sink(out).expect("result is a sink");
    println!(
        "after 100 cycles: {} results delivered, {} voids (pipeline fill)",
        sink.received().len(),
        sink.voids_seen()
    );

    // Latency insensitivity means the relay stations changed *when*
    // results arrive, never *what* they are: the stream must equal the
    // zero-latency reference design's, element for element.
    let mut reference = Netlist::new();
    let r_src = reference.add_source("stimulus");
    let r1 = reference.add_shell("stage1", IdentityPearl::new());
    let r2 = reference.add_shell("stage2", AccumulatorPearl::new());
    let r_out = reference.add_sink("result");
    reference.chain(&[r_src, r1, r2, r_out])?;
    let mut ref_sys = System::new(&reference)?;
    ref_sys.run(100);
    let ref_stream = ref_sys.sink(r_out).expect("sink").received();

    let got = sink.received();
    assert_eq!(got, &ref_stream[..got.len()]);
    println!("stream check: all results identical to the zero-latency reference design");

    // Throughput is 1: feed-forward pipelines lose nothing in steady
    // state, only the fill transient.
    let m = measure(&n)?;
    println!(
        "steady-state throughput: {} (transient {} cycles, period {})",
        m.system_throughput().expect("measured"),
        m.periodicity.expect("periodic").transient,
        m.periodicity.expect("periodic").period,
    );
    Ok(())
}
